// Gate-level binding: evaluates a GateNetlist inside the event kernel.
#pragma once

#include "src/netlist/gates.hpp"
#include "src/sim/kernel.hpp"

namespace bb::sim {

class GateBinding : public Process {
 public:
  /// The netlist must outlive the binding.
  explicit GateBinding(const netlist::GateNetlist& netlist);

  /// Subscribes every gate to its fanin nets.
  void bind(Simulator& sim);

  /// Computes a consistent initial assignment by iterating gate
  /// evaluation to a fixpoint.  Call after seeding primary inputs and
  /// state-bit nets with set_initial; pass the seeded feedback nets as
  /// `clamped` so the iteration cannot stomp them before their drivers
  /// settle.  Throws if no fixpoint is reached or if the released clamps
  /// are inconsistent with the seeded values.
  void settle_initial(Simulator& sim,
                      const std::vector<int>& clamped = {}) const;

  void on_change(Simulator& sim, int net) override;

 private:
  bool eval(const Simulator& sim, const netlist::Gate& gate) const;

  const netlist::GateNetlist& netlist_;
  std::vector<std::vector<int>> fanout_;  // net id -> gate indices
};

}  // namespace bb::sim
