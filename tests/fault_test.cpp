// Fault-injection semantics (sim::FaultPlan) and the campaign harness
// (flow::run_design_campaign / run_fault_campaign).
#include "src/sim/fault.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/balsa/compile.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/faultsim.hpp"
#include "src/flow/flow.hpp"

namespace bb {
namespace {

netlist::GateNetlist systolic_gates() {
  const auto net = balsa::compile_source(designs::design("systolic").source);
  return flow::synthesize_control(net, flow::FlowOptions::optimized()).gates;
}

TEST(FaultPlan, StuckAtRecordsGateAndOutputNet) {
  const auto gates = systolic_gates();
  sim::FaultPlan plan(gates);
  EXPECT_TRUE(plan.empty());

  plan.stuck_at(0, true);
  ASSERT_EQ(plan.faults().size(), 1u);
  const sim::Fault& f = plan.faults()[0];
  EXPECT_EQ(f.kind, sim::FaultKind::kStuckAt1);
  EXPECT_EQ(f.gate, 0);
  EXPECT_EQ(f.net, gates.gates()[0].output);
  EXPECT_TRUE(plan.is_forced(0));
  EXPECT_TRUE(plan.forced_value(0));
  EXPECT_FALSE(plan.is_forced(1));

  const std::string desc = f.describe(gates);
  EXPECT_NE(desc.find("stuck-at-1"), std::string::npos);
}

TEST(FaultPlan, BitFlipTargetsNetAtInstant) {
  const auto gates = systolic_gates();
  sim::FaultPlan plan(gates);
  const int net = gates.gates()[3].output;
  plan.bit_flip(net, 42.0);
  ASSERT_EQ(plan.bit_flips().size(), 1u);
  EXPECT_EQ(plan.bit_flips()[0]->net, net);
  EXPECT_DOUBLE_EQ(plan.bit_flips()[0]->at_ns, 42.0);
  // Bit flips do not force gates or change delays.
  for (std::size_t g = 0; g < gates.gates().size(); ++g) {
    EXPECT_FALSE(plan.is_forced(static_cast<int>(g)));
  }
}

TEST(FaultPlan, DelayPerturbationIsSeedDeterministic) {
  const auto gates = systolic_gates();
  sim::FaultPlan a(gates);
  sim::FaultPlan b(gates);
  sim::FaultPlan c(gates);
  a.perturb_delays(7, 1.5, 0.3);
  b.perturb_delays(7, 1.5, 0.3);
  c.perturb_delays(8, 1.5, 0.3);

  bool differs_from_c = false;
  for (std::size_t g = 0; g < gates.gates().size(); ++g) {
    const int gi = static_cast<int>(g);
    EXPECT_DOUBLE_EQ(a.effective_delay_ns(gi), b.effective_delay_ns(gi));
    if (a.effective_delay_ns(gi) != c.effective_delay_ns(gi)) {
      differs_from_c = true;
    }
  }
  EXPECT_TRUE(differs_from_c) << "different seeds should perturb differently";
}

TEST(FaultOutcome, NamesAndDetection) {
  using flow::FaultOutcome;
  EXPECT_EQ(flow::fault_outcome_name(FaultOutcome::kTolerated), "tolerated");
  EXPECT_EQ(flow::fault_outcome_name(FaultOutcome::kTraceCounterexample),
            "trace-counterexample");
  EXPECT_EQ(flow::fault_outcome_name(FaultOutcome::kWrongOutput),
            "wrong-output");
  EXPECT_EQ(flow::fault_outcome_name(FaultOutcome::kDeadlock), "deadlock");
  EXPECT_EQ(flow::fault_outcome_name(FaultOutcome::kHang), "hang");
  EXPECT_EQ(flow::fault_outcome_name(FaultOutcome::kCrash), "crash");

  EXPECT_FALSE(flow::fault_detected(FaultOutcome::kTolerated));
  EXPECT_TRUE(flow::fault_detected(FaultOutcome::kTraceCounterexample));
  EXPECT_TRUE(flow::fault_detected(FaultOutcome::kDeadlock));
  EXPECT_TRUE(flow::fault_detected(FaultOutcome::kHang));
  EXPECT_TRUE(flow::fault_detected(FaultOutcome::kCrash));
}

TEST(Campaign, ExplicitSeedWins) {
  flow::CampaignOptions options;
  options.seed = 99;
  EXPECT_EQ(flow::effective_seed(options), 99u);
}

flow::CampaignOptions small_campaign() {
  flow::CampaignOptions options;
  options.seed = 1;
  options.random_stuck_at = 2;
  options.bit_flips = 1;
  options.delay_runs = 1;
  return options;
}

TEST(Campaign, SystolicDetectsStuckAtViaTraceVerifier) {
  const auto dc = flow::run_design_campaign(
      "systolic", flow::FlowOptions::optimized(), small_campaign());

  EXPECT_TRUE(dc.baseline_ok);
  EXPECT_GE(dc.monitors, 1);
  EXPECT_EQ(dc.injected, static_cast<int>(dc.runs.size()));
  EXPECT_EQ(dc.injected, dc.detected + dc.tolerated);

  // At least one stuck-at fault must be caught by the trace verifier
  // with a non-empty minimal counterexample naming the offending edge.
  bool stuck_at_cex = false;
  for (const flow::FaultRun& run : dc.runs) {
    EXPECT_EQ(run.detected, flow::fault_detected(run.outcome));
    if (run.outcome == flow::FaultOutcome::kTraceCounterexample) {
      EXPECT_FALSE(run.monitor.empty());
      ASSERT_FALSE(run.counterexample.empty());
      const std::string& last = run.counterexample.back();
      EXPECT_TRUE(last.back() == '+' || last.back() == '-') << last;
      if (run.kind == "stuck-at-1" || run.kind == "stuck-at-0") {
        stuck_at_cex = true;
      }
    }
  }
  EXPECT_TRUE(stuck_at_cex);
  EXPECT_GT(dc.trace_detected, 0);
}

TEST(Campaign, TargetedStuckAtRejectsImmediately) {
  // The targeted fault forces a monitored controller output high at
  // t=0; the specification allows no such edge there, so the minimal
  // counterexample is a single label: the forced wire's rising edge.
  const auto dc = flow::run_design_campaign(
      "systolic", flow::FlowOptions::optimized(), small_campaign());
  bool found = false;
  for (const flow::FaultRun& run : dc.runs) {
    if (run.outcome == flow::FaultOutcome::kTraceCounterexample &&
        run.counterexample.size() == 1) {
      EXPECT_EQ(run.counterexample[0].back(), '+');
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Campaign, SameSeedSameJson) {
  const std::vector<std::string> designs = {"systolic"};
  const auto options = flow::FlowOptions::optimized();
  const auto a = flow::run_fault_campaign(designs, options, small_campaign());
  const auto b = flow::run_fault_campaign(designs, options, small_campaign());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_text(), b.to_text());
  EXPECT_EQ(a.seed, 1u);
  EXPECT_EQ(a.total_injected(), a.total_detected() + a.total_tolerated());
}

TEST(Campaign, DifferentSeedsSampleDifferentFaults) {
  auto opts_a = small_campaign();
  auto opts_b = small_campaign();
  opts_b.seed = 2;
  const auto options = flow::FlowOptions::optimized();
  const auto a = flow::run_design_campaign("systolic", options, opts_a);
  const auto b = flow::run_design_campaign("systolic", options, opts_b);
  std::set<std::string> fa, fb;
  for (const auto& r : a.runs) fa.insert(r.fault);
  for (const auto& r : b.runs) fb.insert(r.fault);
  EXPECT_NE(fa, fb);
}

}  // namespace
}  // namespace bb
