#include <gtest/gtest.h>

#include "src/logic/cover.hpp"
#include "src/logic/cube.hpp"
#include "src/logic/primes.hpp"
#include "src/logic/ucp.hpp"

namespace bb::logic {
namespace {

TEST(Cube, ParseAndPrint) {
  const Cube c = Cube::parse("10-");
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], Lit::kOne);
  EXPECT_EQ(c[1], Lit::kZero);
  EXPECT_EQ(c[2], Lit::kDash);
  EXPECT_EQ(c.to_string(), "10-");
}

TEST(Cube, ParseRejectsBadChars) {
  EXPECT_THROW(Cube::parse("10x"), std::invalid_argument);
}

TEST(Cube, Containment) {
  EXPECT_TRUE(Cube::parse("1--").contains(Cube::parse("10-")));
  EXPECT_FALSE(Cube::parse("10-").contains(Cube::parse("1--")));
  EXPECT_TRUE(Cube::parse("---").contains(Cube::parse("011")));
}

TEST(Cube, MintermContainment) {
  const Cube c = Cube::parse("1-0");
  EXPECT_TRUE(c.contains_minterm({true, false, false}));
  EXPECT_TRUE(c.contains_minterm({true, true, false}));
  EXPECT_FALSE(c.contains_minterm({false, true, false}));
}

TEST(Cube, IntersectDisjoint) {
  EXPECT_FALSE(Cube::parse("1-").intersect(Cube::parse("0-")).has_value());
  EXPECT_FALSE(Cube::parse("1-").intersects(Cube::parse("0-")));
}

TEST(Cube, IntersectOverlap) {
  const auto r = Cube::parse("1--").intersect(Cube::parse("-0-"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->to_string(), "10-");
}

TEST(Cube, Supercube) {
  EXPECT_EQ(Cube::parse("10-").supercube(Cube::parse("11-")).to_string(),
            "1--");
  EXPECT_EQ(Cube::parse("101").supercube(Cube::parse("010")).to_string(),
            "---");
}

TEST(Cube, Distance) {
  EXPECT_EQ(Cube::parse("10").distance(Cube::parse("01")), 2u);
  EXPECT_EQ(Cube::parse("1-").distance(Cube::parse("01")), 1u);
  EXPECT_EQ(Cube::parse("1-").distance(Cube::parse("11")), 0u);
}

TEST(Cover, TautologyFullCube) {
  EXPECT_TRUE(Cover::parse(3, "---").is_tautology());
}

TEST(Cover, TautologySplit) {
  // x + x' covers everything.
  EXPECT_TRUE(Cover::parse(2, "1- 0-").is_tautology());
  EXPECT_FALSE(Cover::parse(2, "1- 01").is_tautology());
}

TEST(Cover, NotTautology) {
  EXPECT_FALSE(Cover::parse(2, "1- -1").is_tautology());
  EXPECT_TRUE(Cover::parse(2, "1- -1 00").is_tautology());
}

TEST(Cover, CoversCube) {
  const Cover f = Cover::parse(3, "1-- -1-");
  EXPECT_TRUE(f.covers_cube(Cube::parse("11-")));
  EXPECT_TRUE(f.covers_cube(Cube::parse("1-0")));
  EXPECT_FALSE(f.covers_cube(Cube::parse("--1")));
  EXPECT_FALSE(f.covers_cube(Cube::parse("0-1")));
  EXPECT_TRUE(f.covers_cube(Cube::parse("01-")));
}

TEST(Cover, ComplementAgainstEnumeration) {
  const Cover f = Cover::parse(4, "1--- -11- --01");
  const Cover g = f.complement();
  const std::size_t total = 16;
  for (std::size_t m = 0; m < total; ++m) {
    std::vector<bool> bits(4);
    for (std::size_t v = 0; v < 4; ++v) bits[v] = (m >> v) & 1u;
    EXPECT_NE(f.covers_minterm(bits), g.covers_minterm(bits))
        << "minterm " << m;
  }
}

TEST(Cover, ComplementOfEmptyIsTautology) {
  const Cover f(3);
  EXPECT_TRUE(f.complement().is_tautology());
}

TEST(Cover, ComplementOfTautologyIsEmpty) {
  EXPECT_TRUE(Cover::parse(3, "---").complement().empty());
}

TEST(Cover, SingleCubeContainmentRemoval) {
  Cover f = Cover::parse(3, "1-- 10- 1--");
  f.remove_single_cube_contained();
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].to_string(), "1--");
}

TEST(Primes, Consensus) {
  const auto c = consensus(Cube::parse("1-1"), Cube::parse("0-1"));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->to_string(), "--1");
  EXPECT_FALSE(consensus(Cube::parse("10"), Cube::parse("01")).has_value());
  EXPECT_FALSE(consensus(Cube::parse("1-"), Cube::parse("11")).has_value());
}

TEST(Primes, XorFunctionPrimes) {
  // f = a'b + ab' : both cubes are prime, no consensus merge.
  const auto primes = all_primes(Cover::parse(2, "01 10"), Cover(2));
  EXPECT_EQ(primes.size(), 2u);
}

TEST(Primes, MergeAdjacent) {
  // f = ab + ab' = a.
  const auto primes = all_primes(Cover::parse(2, "11 10"), Cover(2));
  ASSERT_EQ(primes.size(), 1u);
  EXPECT_EQ(primes[0].to_string(), "1-");
}

TEST(Primes, WithDontCares) {
  // ON = {11}, DC = {10}: prime should expand to "1-".
  const auto primes = all_primes(Cover::parse(2, "11"), Cover::parse(2, "10"));
  ASSERT_EQ(primes.size(), 1u);
  EXPECT_EQ(primes[0].to_string(), "1-");
}

TEST(Primes, ClassicThreeVar) {
  // f = a'b' + bc + ab  (primes: a'b', bc, ab, and consensus ac? check)
  const auto primes =
      all_primes(Cover::parse(3, "00- -11 11-"), Cover(3));
  // Known primes of a'b' + bc + ab: a'b', bc, ab, ac.
  EXPECT_EQ(primes.size(), 4u);
}

TEST(Ucp, Essential) {
  UcpProblem p;
  p.column_cost = {1, 1, 1};
  p.covers = {{0}, {0, 1}, {2}};
  const auto sol = solve_ucp(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.columns, (std::vector<std::size_t>{0, 2}));
}

TEST(Ucp, PrefersCheaper) {
  UcpProblem p;
  p.column_cost = {10, 1, 1};
  p.covers = {{0, 1}, {0, 2}};
  const auto sol = solve_ucp(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_DOUBLE_EQ(sol.cost, 2.0);
  EXPECT_EQ(sol.columns, (std::vector<std::size_t>{1, 2}));
}

TEST(Ucp, Infeasible) {
  UcpProblem p;
  p.column_cost = {1};
  p.covers = {{0}, {}};
  const auto sol = solve_ucp(p);
  EXPECT_FALSE(sol.feasible);
}

TEST(Ucp, CyclicCore) {
  // Classic cyclic covering: rows {0,1},{1,2},{2,0}; optimal = 2 columns.
  UcpProblem p;
  p.column_cost = {1, 1, 1};
  p.covers = {{0, 1}, {1, 2}, {2, 0}};
  const auto sol = solve_ucp(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.columns.size(), 2u);
}

TEST(Ucp, EmptyProblemIsFeasible) {
  UcpProblem p;
  const auto sol = solve_ucp(p);
  EXPECT_TRUE(sol.feasible);
  EXPECT_TRUE(sol.columns.empty());
}

}  // namespace
}  // namespace bb::logic
