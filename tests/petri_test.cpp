#include <gtest/gtest.h>

#include "src/ch/parser.hpp"
#include "src/petri/from_ch.hpp"
#include "src/petri/net.hpp"

namespace bb::petri {
namespace {

TEST(PetriNet, FireSimpleChain) {
  PetriNet net;
  const int p0 = net.add_place(true);
  const int p1 = net.add_place();
  const int p2 = net.add_place();
  net.add_transition(Transition{"a+", {p0}, {p1}});
  net.add_transition(Transition{"a-", {p1}, {p2}});
  const Lts lts = net.reachability();
  EXPECT_EQ(lts.num_states, 3);
  ASSERT_EQ(lts.edges.size(), 2u);
  EXPECT_EQ(lts.edges[0].label, "a+");
  EXPECT_EQ(lts.edges[1].label, "a-");
}

TEST(PetriNet, LoopReachability) {
  PetriNet net;
  const int p0 = net.add_place(true);
  const int p1 = net.add_place();
  net.add_transition(Transition{"a+", {p0}, {p1}});
  net.add_transition(Transition{"a-", {p1}, {p0}});
  const Lts lts = net.reachability();
  EXPECT_EQ(lts.num_states, 2);
  EXPECT_EQ(lts.edges.size(), 2u);
}

TEST(PetriNet, ConcurrencyInterleaves) {
  // Two independent tokens: 4 reachable markings.
  PetriNet net;
  const int a0 = net.add_place(true);
  const int a1 = net.add_place();
  const int b0 = net.add_place(true);
  const int b1 = net.add_place();
  net.add_transition(Transition{"x+", {a0}, {a1}});
  net.add_transition(Transition{"y+", {b0}, {b1}});
  const Lts lts = net.reachability();
  EXPECT_EQ(lts.num_states, 4);
  EXPECT_EQ(lts.edges.size(), 4u);
}

TEST(PetriNet, NotOneSafeDetected) {
  PetriNet net;
  const int p0 = net.add_place(true);
  const int p1 = net.add_place(true);
  const int p2 = net.add_place(true);
  net.add_transition(Transition{"a+", {p0}, {p2}});
  (void)p1;
  EXPECT_THROW(net.reachability(), std::runtime_error);
}

TEST(PetriNet, ComposeSynchronizesSharedLabels) {
  // Net A: x+ then c+.  Net B: c+ then y+.  Composed: x+ c+ y+ only.
  PetriNet a;
  const int a0 = a.add_place(true);
  const int a1 = a.add_place();
  const int a2 = a.add_place();
  a.add_transition(Transition{"x+", {a0}, {a1}});
  a.add_transition(Transition{"c+", {a1}, {a2}});
  PetriNet b;
  const int b0 = b.add_place(true);
  const int b1 = b.add_place();
  const int b2 = b.add_place();
  b.add_transition(Transition{"c+", {b0}, {b1}});
  b.add_transition(Transition{"y+", {b1}, {b2}});

  const PetriNet composed = PetriNet::compose(a, b);
  const Lts lts = composed.reachability();
  // States: init, after x+, after c+, after y+.
  EXPECT_EQ(lts.num_states, 4);
  EXPECT_EQ(lts.edges.size(), 3u);
}

TEST(PetriNet, HidePrefixes) {
  PetriNet net;
  const int p0 = net.add_place(true);
  const int p1 = net.add_place();
  net.add_transition(Transition{"c_r+", {p0}, {p1}});
  net.hide_prefixes({"c_"});
  EXPECT_TRUE(net.alphabet().empty());
}

TEST(FromCh, SingleChannelTraces) {
  const auto net = from_ch(*ch::parse("(p-to-p passive A)"));
  const Lts lts = net.reachability();
  EXPECT_EQ(lts.num_states, 5);  // 4 transitions in a row
  EXPECT_EQ(lts.edges.size(), 4u);
}

TEST(FromCh, RepLoops) {
  const auto net = from_ch(*ch::parse("(rep (p-to-p passive A))"));
  const Lts lts = net.reachability();
  // Four handshake states plus the pre-tau state of the loop back-edge;
  // the after-loop place is unreachable.
  EXPECT_EQ(lts.num_states, 5);
  bool has_tau_backedge = false;
  for (const auto& e : lts.edges) {
    if (e.label.empty() && e.to == lts.initial) has_tau_backedge = true;
  }
  EXPECT_TRUE(has_tau_backedge);
}

TEST(FromCh, MutexCreatesConflict) {
  const auto net = from_ch(*ch::parse(
      "(rep (mutex (enc-early (p-to-p passive A1) (p-to-p active B))"
      "            (enc-early (p-to-p passive A2) (p-to-p active B))))"));
  const Lts lts = net.reachability();
  // The initial state must offer both a1_r+ and a2_r+.
  int choices = 0;
  for (const auto& e : lts.edges) {
    if (e.from == lts.initial) ++choices;
  }
  EXPECT_EQ(choices, 2);
}

TEST(FromCh, EncMiddleLinearizesBursts) {
  // The intermediate form fixes one linear order inside each burst
  // ([a1 b1] -> a_r+ then b_r+); burst concurrency is a BM-level notion.
  const auto net = from_ch(*ch::parse(
      "(enc-middle (p-to-p passive A) (p-to-p passive B))"));
  const Lts lts = net.reachability();
  EXPECT_EQ(lts.num_states, 9);
  ASSERT_GE(lts.edges.size(), 2u);
  EXPECT_EQ(lts.edges[0].label, "a_r+");
  EXPECT_EQ(lts.edges[1].label, "b_r+");
}

TEST(FromCh, ToStringSmoke) {
  const auto net = from_ch(*ch::parse("(p-to-p passive A)"));
  EXPECT_NE(net.to_string().find("a_r+"), std::string::npos);
}

}  // namespace
}  // namespace bb::petri
