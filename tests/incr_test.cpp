// The incremental-build subsystem: manifest/artifact framing and
// corruption recovery, unit-digest stability, multi-procedure parsing,
// library-versioned cache keys, and the end-to-end contract — an edit
// rebuilds exactly the affected units and the spliced output stays
// byte-identical to a full rebuild.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/balsa/digest.hpp"
#include "src/balsa/parser.hpp"
#include "src/balsa/printer.hpp"
#include "src/bm/parse.hpp"
#include "src/incr/build.hpp"
#include "src/incr/manifest.hpp"
#include "src/minimalist/cache.hpp"
#include "src/minimalist/synth.hpp"
#include "src/util/failpoint.hpp"

namespace fs = std::filesystem;
using namespace bb;

namespace {

/// A fresh directory under the system temp root, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag) {
    path = fs::temp_directory_path() /
           (std::string("bb_incr_test_") + tag + "_" +
            std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

void spill(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// A two-unit program whose procedures are deliberately different shapes
// so their digests and artifacts cannot collide.
constexpr const char* kProgram = R"(
procedure relay (input in : 8; output out : 8) is
  variable v : 8
begin
  loop
    in -> v ; out <- v
  end
end

procedure ticker (sync tick; sync tock) is
begin
  loop
    sync tick ; sync tock
  end
end
)";

// Same program with `relay` edited (an extra buffered stage) and
// `ticker` untouched.
constexpr const char* kProgramEdited = R"(
procedure relay (input in : 8; output out : 8) is
  variable v : 8
  variable w : 8
begin
  loop
    in -> v ; w := v ; out <- w
  end
end

procedure ticker (sync tick; sync tock) is
begin
  loop
    sync tick ; sync tock
  end
end
)";

incr::Manifest sample_manifest() {
  incr::Manifest m;
  m.library = "lib-fp";
  m.options = "opt-fp";
  incr::UnitRecord unit;
  unit.name = "relay";
  unit.digest = "0123456789abcdef";
  unit.artifact = "relay-0123456789abcdef.bba";
  unit.controllers.push_back({"relay_c0", "fedcba9876543210"});
  unit.controllers.push_back({"relay_c1", ""});
  m.units.push_back(unit);
  incr::UnitRecord other;
  other.name = "ticker";
  other.digest = "ffffffffffffffff";
  other.artifact = "ticker-ffffffffffffffff.bba";
  m.units.push_back(other);
  return m;
}

}  // namespace

// ---- manifest and artifact serialization ----

TEST(Manifest, RoundTripPreservesEveryField) {
  const incr::Manifest m = sample_manifest();
  std::string error;
  const auto back = incr::manifest_from_bytes(incr::manifest_to_bytes(m),
                                              &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->library, "lib-fp");
  EXPECT_EQ(back->options, "opt-fp");
  ASSERT_EQ(back->units.size(), 2u);
  EXPECT_EQ(back->units[0].name, "relay");
  EXPECT_EQ(back->units[0].digest, "0123456789abcdef");
  EXPECT_EQ(back->units[0].artifact, "relay-0123456789abcdef.bba");
  ASSERT_EQ(back->units[0].controllers.size(), 2u);
  EXPECT_EQ(back->units[0].controllers[0].name, "relay_c0");
  EXPECT_EQ(back->units[0].controllers[0].key, "fedcba9876543210");
  EXPECT_EQ(back->units[0].controllers[1].key, "");
  EXPECT_EQ(back->units[1].name, "ticker");
  // Serialization is deterministic — a round trip is a byte fixed point.
  EXPECT_EQ(incr::manifest_to_bytes(*back), incr::manifest_to_bytes(m));
}

TEST(Manifest, FindLocatesUnitsByName) {
  const incr::Manifest m = sample_manifest();
  ASSERT_NE(m.find("ticker"), nullptr);
  EXPECT_EQ(m.find("ticker")->digest, "ffffffffffffffff");
  EXPECT_EQ(m.find("nope"), nullptr);
}

TEST(Manifest, AnyFramingDefectIsRejectedWithAReason) {
  const std::string good = incr::manifest_to_bytes(sample_manifest());
  std::vector<std::string> bad;
  bad.push_back("");                                  // empty
  bad.push_back("not a manifest at all");             // bad magic
  bad.push_back(good.substr(0, good.size() / 2));     // truncated
  {
    std::string flipped = good;                       // corrupted body
    flipped[flipped.size() - 2] ^= 0x20;
    bad.push_back(flipped);
  }
  {
    // Version bump: readers of version 1 must refuse a version 2 file.
    std::string bumped = good;
    const auto pos = bumped.find("bbpm 1");
    ASSERT_NE(pos, std::string::npos);
    bumped[pos + 5] = '2';
    bad.push_back(bumped);
  }
  for (const auto& bytes : bad) {
    std::string error;
    EXPECT_FALSE(incr::manifest_from_bytes(bytes, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
}

TEST(Manifest, ArtifactRoundTripIsByteExact) {
  incr::Artifact a;
  a.report = "controller report\nwith lines\n";
  a.verilog = "module relay();\nendmodule\n";
  std::string error;
  const auto back = incr::artifact_from_bytes(incr::artifact_to_bytes(a),
                                              &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->report, a.report);
  EXPECT_EQ(back->verilog, a.verilog);
  EXPECT_FALSE(
      incr::artifact_from_bytes("bbart 1\n0000000000000000\n{}").has_value());
}

TEST(Manifest, ArtifactFileNamesAreSanitized) {
  EXPECT_EQ(incr::artifact_file_name("relay", "0123456789abcdef"),
            "relay-0123456789abcdef.bba");
  // A hostile unit name cannot traverse out of artifacts/.
  const std::string evil = incr::artifact_file_name("../../etc/passwd",
                                                    "0123456789abcdef");
  EXPECT_EQ(evil.find('/'), std::string::npos);
  EXPECT_EQ(evil.find(".."), std::string::npos);
}

TEST(Manifest, DiskRoundTripAndGc) {
  TempDir dir("disk");
  incr::Manifest m = sample_manifest();
  incr::Artifact a;
  a.report = "r";
  a.verilog = "v";
  std::string error;
  ASSERT_TRUE(incr::store_artifact(dir.str(), m.units[0].artifact, a, &error))
      << error;
  ASSERT_TRUE(incr::store_artifact(dir.str(), m.units[1].artifact, a, &error))
      << error;
  ASSERT_TRUE(incr::store_manifest(dir.str(), m, &error)) << error;

  const auto loaded = incr::load_manifest(dir.str(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(incr::manifest_to_bytes(*loaded), incr::manifest_to_bytes(m));
  const auto art = incr::load_artifact(dir.str(), m.units[0].artifact);
  ASSERT_TRUE(art.has_value());
  EXPECT_EQ(art->report, "r");

  // Drop the second unit from the manifest: gc removes its artifact and
  // keeps the referenced one.
  const std::string stale = m.units[1].artifact;
  m.units.pop_back();
  EXPECT_EQ(incr::gc_artifacts(dir.str(), m), 1u);
  EXPECT_TRUE(fs::exists(incr::artifact_path(dir.str(), m.units[0].artifact)));
  EXPECT_FALSE(fs::exists(incr::artifact_path(dir.str(), stale)));
}

TEST(Manifest, CorruptedOnDiskManifestLoadsAsAbsent) {
  TempDir dir("corrupt");
  std::string error;
  ASSERT_TRUE(incr::store_manifest(dir.str(), sample_manifest(), &error));
  spill(incr::manifest_path(dir.str()), "bbpm 1\ngarbage");
  EXPECT_FALSE(incr::load_manifest(dir.str(), &error).has_value());
  EXPECT_FALSE(error.empty());
}

// ---- unit digests ----

TEST(Digest, ReparseReprintIsAFixedPoint) {
  const auto procs = balsa::parse_program(kProgram);
  ASSERT_EQ(procs.size(), 2u);
  for (const auto& proc : procs) {
    const std::string d1 = balsa::procedure_digest(proc);
    const auto reparsed = balsa::parse_procedure(balsa::to_source(proc));
    EXPECT_EQ(balsa::procedure_digest(reparsed), d1) << proc.name;
    EXPECT_EQ(d1.size(), 16u);
  }
}

TEST(Digest, FormattingIsInvisibleNamesAreNot) {
  const auto program = balsa::parse_program(kProgram);
  const auto& base = program[0];
  // Whitespace/comment noise digests identically...
  const std::string noisy =
      "-- a comment\nprocedure relay (input in : 8;\n"
      "    output out : 8) is\n  variable v : 8\nbegin\n"
      "  loop in -> v ;\n       out <- v end\nend\n";
  EXPECT_EQ(balsa::procedure_digest(balsa::parse_procedure(noisy)),
            balsa::procedure_digest(base));
  // ...but renaming a port must dirty the unit: the Verilog interface
  // changes even though the structure does not.
  const std::string renamed =
      "procedure relay (input in : 8; output egress : 8) is\n"
      "  variable v : 8\nbegin\n  loop\n    in -> v ; egress <- v\n"
      "  end\nend\n";
  EXPECT_NE(balsa::procedure_digest(balsa::parse_procedure(renamed)),
            balsa::procedure_digest(base));
}

TEST(Digest, UnitDigestFoldsInOptionsAndLibrary) {
  const auto program = balsa::parse_program(kProgram);
  const auto& proc = program[0];
  const std::string base = incr::unit_digest(proc, "opts-a", "lib-a");
  EXPECT_EQ(incr::unit_digest(proc, "opts-a", "lib-a"), base);
  EXPECT_NE(incr::unit_digest(proc, "opts-b", "lib-a"), base);
  EXPECT_NE(incr::unit_digest(proc, "opts-a", "lib-b"), base);
}

TEST(Digest, OptionsFingerprintIgnoresByteNeutralKnobs) {
  flow::FlowOptions a = flow::FlowOptions::optimized();
  flow::FlowOptions b = a;
  b.jobs = 7;
  b.cache = false;
  EXPECT_EQ(incr::options_fingerprint(a), incr::options_fingerprint(b));
  b.max_states = a.max_states + 1;
  EXPECT_NE(incr::options_fingerprint(a), incr::options_fingerprint(b));
  flow::FlowOptions c = flow::FlowOptions::unoptimized();
  EXPECT_NE(incr::options_fingerprint(a), incr::options_fingerprint(c));
}

// ---- multi-procedure parsing ----

TEST(ParseProgram, ParsesUnitsInDeclarationOrder) {
  const auto procs = balsa::parse_program(kProgram);
  ASSERT_EQ(procs.size(), 2u);
  EXPECT_EQ(procs[0].name, "relay");
  EXPECT_EQ(procs[1].name, "ticker");
}

TEST(ParseProgram, RejectsDuplicateNamesAndTrailingGarbage) {
  const std::string dup = std::string(kProgram) +
                          "\nprocedure relay (sync s) is\nbegin\n"
                          "  sync s\nend\n";
  EXPECT_THROW(balsa::parse_program(dup), balsa::ParseError);
  EXPECT_THROW(balsa::parse_program("procedure x (sync s) is begin sync s "
                                    "end trailing"),
               balsa::ParseError);
  EXPECT_THROW(balsa::parse_program("   \n-- only comments\n"),
               balsa::ParseError);
}

// ---- library-versioned cache keys (satellite: staleness fix) ----

namespace {

constexpr const char* kWireBms = R"(
name wire
input a_r 0
output a_a 0
0 1 a_r+ | a_a+
1 0 a_r- | a_a-
)";

}  // namespace

TEST(CacheKey, LibraryVersionSaltsTheKey) {
  const auto spec = bm::parse_bms(kWireBms);
  const auto mode = minimalist::SynthMode::kSpeed;
  const std::string unsalted = minimalist::cache_key(spec, mode);
  EXPECT_EQ(minimalist::cache_key(spec, mode, ""), unsalted)
      << "empty version must reproduce the legacy key format";
  const std::string v1 = minimalist::cache_key(spec, mode, "lib-v1");
  const std::string v2 = minimalist::cache_key(spec, mode, "lib-v2");
  EXPECT_NE(v1, unsalted);
  EXPECT_NE(v1, v2);
}

TEST(CacheKey, ChangingTheLibraryVersionInvalidatesTheCache) {
  minimalist::SynthCache cache;
  cache.set_library_version("lib-v1");
  const auto spec = bm::parse_bms(kWireBms);
  const auto ctrl = minimalist::synthesize(spec);
  cache.store(spec, minimalist::SynthMode::kSpeed, ctrl);
  EXPECT_TRUE(cache.lookup(spec, minimalist::SynthMode::kSpeed).has_value());
  // A techmap upgrade must not serve the old library's netlists.
  cache.set_library_version("lib-v2");
  EXPECT_FALSE(cache.lookup(spec, minimalist::SynthMode::kSpeed).has_value());
  cache.set_library_version("lib-v1");
  EXPECT_TRUE(cache.lookup(spec, minimalist::SynthMode::kSpeed).has_value());
}

// ---- end-to-end incremental builds ----

namespace {

struct IncrTest : ::testing::Test {
  TempDir dir{"build"};
  flow::FlowOptions options = flow::FlowOptions::optimized();
};

}  // namespace

TEST_F(IncrTest, ColdThenWarmThenEditRebuildsExactlyTheDirtyUnit) {
  const auto cold = incr::build(kProgram, dir.str(), options);
  EXPECT_TRUE(cold.full_rebuild);
  EXPECT_EQ(cold.units_rebuilt, 2u);
  EXPECT_EQ(cold.units_reused, 0u);
  EXPECT_TRUE(cold.manifest_stored);
  ASSERT_EQ(cold.units.size(), 2u);
  EXPECT_EQ(cold.units[0].name, "relay");
  EXPECT_FALSE(cold.units[0].reused);

  const auto warm = incr::build(kProgram, dir.str(), options);
  EXPECT_FALSE(warm.full_rebuild);
  EXPECT_EQ(warm.units_rebuilt, 0u);
  EXPECT_EQ(warm.units_reused, 2u);
  EXPECT_EQ(warm.controllers_rebuilt, 0u);
  EXPECT_EQ(warm.verilog, cold.verilog) << "warm splice must be byte-exact";
  EXPECT_EQ(warm.report, cold.report);
  EXPECT_EQ(warm.timings.incr_units_reused, 2u);

  const auto edited = incr::build(kProgramEdited, dir.str(), options);
  EXPECT_FALSE(edited.full_rebuild);
  EXPECT_EQ(edited.units_rebuilt, 1u);
  EXPECT_EQ(edited.units_reused, 1u);
  ASSERT_EQ(edited.units.size(), 2u);
  EXPECT_FALSE(edited.units[0].reused) << "relay was edited";
  EXPECT_TRUE(edited.units[1].reused) << "ticker was not";

  // The spliced output equals a from-scratch build of the edited program.
  TempDir scratch("scratch");
  const auto full = incr::build(kProgramEdited, scratch.str(), options);
  EXPECT_EQ(edited.verilog, full.verilog);
  EXPECT_EQ(edited.report, full.report);
}

TEST_F(IncrTest, CorruptManifestDegradesToAFullRebuildNeverWrongOutput) {
  const auto cold = incr::build(kProgram, dir.str(), options);
  for (const char* garbage :
       {"", "total garbage", "bbpm 2\n0000000000000000\n{}",
        "bbpm 1\n0000000000000000\n{\"units\":[]}"}) {
    spill(incr::manifest_path(dir.str()), garbage);
    const auto rebuilt = incr::build(kProgram, dir.str(), options);
    EXPECT_TRUE(rebuilt.full_rebuild) << '"' << garbage << '"';
    EXPECT_FALSE(rebuilt.full_rebuild_reason.empty());
    EXPECT_EQ(rebuilt.units_rebuilt, 2u);
    EXPECT_EQ(rebuilt.verilog, cold.verilog)
        << "corruption may cost time, never bytes";
  }
  // The rebuild rewrote a good manifest: the next build reuses again.
  const auto warm = incr::build(kProgram, dir.str(), options);
  EXPECT_EQ(warm.units_reused, 2u);
}

TEST_F(IncrTest, MissingArtifactDirtiesOnlyThatUnit) {
  const auto cold = incr::build(kProgram, dir.str(), options);
  std::string error;
  const auto manifest = incr::load_manifest(dir.str(), &error);
  ASSERT_TRUE(manifest.has_value()) << error;
  fs::remove(incr::artifact_path(dir.str(), manifest->find("relay")->artifact));
  const auto rebuilt = incr::build(kProgram, dir.str(), options);
  EXPECT_EQ(rebuilt.units_rebuilt, 1u);
  EXPECT_EQ(rebuilt.units_reused, 1u);
  EXPECT_EQ(rebuilt.verilog, cold.verilog);
}

TEST_F(IncrTest, OptionChangesDirtyEveryUnit) {
  incr::build(kProgram, dir.str(), options);
  flow::FlowOptions changed = options;
  changed.max_states = options.max_states + 1;
  const auto rebuilt = incr::build(kProgram, dir.str(), changed);
  EXPECT_EQ(rebuilt.units_rebuilt, 2u);
  EXPECT_EQ(rebuilt.units_reused, 0u);
  // Byte-neutral knobs must NOT dirty the project.
  flow::FlowOptions neutral = changed;
  neutral.jobs = 3;
  neutral.cache = false;
  const auto warm = incr::build(kProgram, dir.str(), neutral);
  EXPECT_EQ(warm.units_reused, 2u);
}

TEST_F(IncrTest, EditsNeverLeaveStaleArtifactsBehind)  {
  incr::build(kProgram, dir.str(), options);
  incr::build(kProgramEdited, dir.str(), options);
  // Every file under artifacts/ is referenced by the live manifest.
  std::string error;
  const auto manifest = incr::load_manifest(dir.str(), &error);
  ASSERT_TRUE(manifest.has_value()) << error;
  std::size_t on_disk = 0;
  for (const auto& entry :
       fs::directory_iterator(fs::path(dir.str()) / incr::kArtifactDir)) {
    ++on_disk;
    bool referenced = false;
    for (const auto& unit : manifest->units) {
      referenced = referenced || unit.artifact == entry.path().filename();
    }
    EXPECT_TRUE(referenced) << entry.path();
  }
  EXPECT_EQ(on_disk, manifest->units.size());
}

TEST_F(IncrTest, ParseFailuresDoNotPoisonTheProject) {
  incr::build(kProgram, dir.str(), options);
  EXPECT_THROW(incr::build("procedure broken (", dir.str(), options),
               balsa::ParseError);
  const auto warm = incr::build(kProgram, dir.str(), options);
  EXPECT_EQ(warm.units_reused, 2u) << "a failed build must leave the "
                                      "manifest of the last good one";
}

TEST_F(IncrTest, ManifestStoreFailureIsReportedButTheBuildStandsAlone) {
  if (!util::Failpoints::compiled_in()) {
    GTEST_SKIP() << "failpoints are compiled out of this build";
  }
  util::Failpoints::clear();
  ASSERT_TRUE(util::Failpoints::set("incr.manifest.store", "once"));
  const auto cold = incr::build(kProgram, dir.str(), options);
  util::Failpoints::clear();
  EXPECT_FALSE(cold.manifest_stored);
  EXPECT_EQ(cold.units_rebuilt, 2u);
  EXPECT_FALSE(cold.verilog.empty());
  // Nothing was persisted, so the next build is cold again — slower,
  // never wrong — and this time it sticks.
  const auto retry = incr::build(kProgram, dir.str(), options);
  EXPECT_TRUE(retry.manifest_stored);
  EXPECT_EQ(retry.verilog, cold.verilog);
  const auto warm = incr::build(kProgram, dir.str(), options);
  EXPECT_EQ(warm.units_reused, 2u);
}
