// The static-analysis subsystem: one clean and one deliberately-broken
// fixture per rule, the structured-diagnostics framework itself (rule
// registry, suppression, reporters), and the flow integration.
#include "src/lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/balsa/compile.hpp"
#include "src/bm/compile.hpp"
#include "src/bm/parse.hpp"
#include "src/bm/validate.hpp"
#include "src/ch/parser.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/flow.hpp"
#include "src/lint/diag.hpp"
#include "src/lint/sarif.hpp"
#include "src/minimalist/synth.hpp"

namespace bb::lint {
namespace {

using hsnet::Component;
using hsnet::ComponentKind;
using netlist::CellFn;

// ---- helpers -------------------------------------------------------

Component make(ComponentKind kind, std::vector<std::string> ports,
               int ways = 0) {
  Component c;
  c.kind = kind;
  c.ports = std::move(ports);
  c.ways = ways;
  return c;
}

/// Rule ids present in a report, in report order.
std::vector<std::string> rules_of(const Report& report) {
  std::vector<std::string> out;
  for (const Diagnostic& d : report.diagnostics()) out.push_back(d.rule);
  return out;
}

bool has_rule(const Report& report, std::string_view id) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == id) return true;
  }
  return false;
}

/// A minimal clean netlist: environment -> Loop -> Sequence -> two
/// Continues, every internal channel one-active/one-passive.
hsnet::Netlist clean_handshake() {
  hsnet::Netlist net("clean");
  net.declare_channel("a", 0, /*external=*/true);
  net.add(make(ComponentKind::kLoop, {"a", "b"}));
  net.add(make(ComponentKind::kSequence, {"b", "c", "d"}));
  net.add(make(ComponentKind::kContinue, {"c"}));
  net.add(make(ComponentKind::kContinue, {"d"}));
  return net;
}

/// A two-state wire machine; trivially valid.
bm::Spec clean_spec() {
  return bm::parse_bms(R"(
name wire
input a_r 0
output a_a 0
0 1 a_r+ | a_a+
1 0 a_r- | a_a-
)");
}

/// Gate fixture helper: INV with explicit nets.
int add_inv(netlist::GateNetlist& net, int from, int to = -1) {
  return net.add_gate("INV", CellFn::kInv, {from}, 0.1, 10.0, to);
}

// ---- diagnostics framework -----------------------------------------

TEST(Diag, RegistryHasStableUniqueIds) {
  const auto& rules = all_rules();
  ASSERT_GE(rules.size(), 8u);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    for (std::size_t j = i + 1; j < rules.size(); ++j) {
      EXPECT_NE(rules[i].id, rules[j].id);
    }
    EXPECT_EQ(find_rule(rules[i].id), &rules[i]);
  }
  ASSERT_NE(find_rule("BM004"), nullptr);
  EXPECT_EQ(find_rule("BM004")->severity, Severity::kError);
  ASSERT_NE(find_rule("NL004"), nullptr);
  EXPECT_EQ(find_rule("NL004")->severity, Severity::kWarning);
  EXPECT_EQ(find_rule("ZZ999"), nullptr);
}

TEST(Diag, AddUsesRegisteredSeverityAndRejectsUnknownRules) {
  Report report;
  report.add("BM002", "arc 0->1", "input burst is empty");
  report.add("BM007", "state 3", "unreachable");
  EXPECT_EQ(report.count(Severity::kError), 1u);
  EXPECT_EQ(report.count(Severity::kWarning), 1u);
  EXPECT_TRUE(report.has_errors());
  EXPECT_THROW(report.add("XX001", "x", "y"), std::invalid_argument);
}

TEST(Diag, SuppressionDropsFindingsAtAddAndMergeTime) {
  Report report;
  report.suppress("BM002");
  report.add("BM002", "arc 0->1", "suppressed");
  EXPECT_TRUE(report.empty());

  Report other;
  other.add("BM002", "arc 0->1", "kept in the source report");
  other.add("BM007", "state 3", "survives the merge");
  report.merge(other);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"BM007"});
}

TEST(Diag, TextReporterFormatsOneLinePerFinding) {
  Report report;
  report.add("NL001", "net 'x'", "driven twice");
  const std::string text = report.to_text();
  EXPECT_NE(text.find("error[NL001] net 'x': driven twice"),
            std::string::npos);
  EXPECT_NE(text.find("1 error(s), 0 warning(s), 0 note(s)"),
            std::string::npos);
}

TEST(Diag, JsonReporterGolden) {
  Report report;
  report.add("BM002", "arc 0->1", "input burst is empty");
  report.add("NL004", "net 'y'", "drives 9 gate inputs (limit \"8\")");
  EXPECT_EQ(
      report.to_json(),
      "{\"schema_version\":1,\"diagnostics\":["
      "{\"rule\":\"BM002\",\"severity\":\"error\",\"object\":\"arc 0->1\","
      "\"message\":\"input burst is empty\"},"
      "{\"rule\":\"NL004\",\"severity\":\"warning\",\"object\":\"net 'y'\","
      "\"message\":\"drives 9 gate inputs (limit \\\"8\\\")\"}"
      "],\"errors\":1,\"warnings\":1,\"notes\":0}");
}

TEST(Diag, JsonEscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Diag, SeverityOverrideAppliesAtAddAndMergeTime) {
  Report report;
  report.override_severity("BM002", Severity::kWarning);
  report.add("BM002", "arc 0->1", "demoted at add time");
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(report.count(Severity::kWarning), 1u);

  Report other;
  other.add("BM002", "arc 1->2", "demoted at merge time");
  report.merge(other);
  EXPECT_EQ(report.count(Severity::kWarning), 2u);
  EXPECT_FALSE(report.has_errors());

  // An override wins over a pass's explicit-severity add too.
  report.add("BM002", Severity::kError, "arc 2->3", "escalation overridden");
  EXPECT_FALSE(report.has_errors());
}

TEST(Diag, BaselineSuppressesTheExactFindingOnly) {
  Report report;
  report.baseline({"NL004", "net 'y'"});
  report.add("NL004", "net 'y'", "accepted finding");
  EXPECT_TRUE(report.empty());
  report.add("NL004", "net 'z'", "a new finding on the same rule");
  EXPECT_EQ(report.count(Severity::kWarning), 1u);
  EXPECT_TRUE(report.is_baselined("NL004", "net 'y'"));
  EXPECT_FALSE(report.is_baselined("NL004", "net 'z'"));
}

TEST(Diag, BaselineRoundTripsThroughRenderAndParse) {
  Report report;
  report.add("BM002", "arc 0->1", "x");
  report.add("NL004", "net 'y'", "y");
  const auto entries = parse_baseline(report.to_baseline());
  ASSERT_EQ(entries.size(), 2u);
  Report filtered;
  for (const auto& e : entries) filtered.baseline(e);
  filtered.merge(report);
  EXPECT_TRUE(filtered.empty());
}

TEST(Diag, ParseBaselineSkipsCommentsAndMalformedLines) {
  const auto entries =
      parse_baseline("# comment\n\nBM002\tarc 0->1\nno-tab-here\n");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rule, "BM002");
  EXPECT_EQ(entries[0].object, "arc 0->1");
}

// ---- SARIF reporter ------------------------------------------------

TEST(Sarif, RendersRulesAndResultsWithLogicalLocations) {
  Report report;
  report.add("BM002", "arc 0->1", "input burst is empty");
  const std::string sarif = to_sarif(report, "demo");
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"BM002\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"fullyQualifiedName\":\"demo::arc 0->1\""),
            std::string::npos);
  // The tool.driver.rules table carries every registered rule, including
  // the semantic pass families.
  EXPECT_NE(sarif.find("\"id\":\"AN001\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\":\"PN002\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\":\"NL005\""), std::string::npos);
}

/// Writes `content` to a temp file and round-trips it through
/// `python3 -m json.tool` (a strict JSON parser).  Skips when python3 is
/// unavailable.
void expect_valid_json(const std::string& content, const char* tag) {
  if (std::system("python3 -c '' >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  const std::string path =
      testing::TempDir() + "lint_json_" + tag + ".json";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << content;
  }
  const std::string cmd = "python3 -m json.tool '" + path + "' >/dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << "invalid JSON in " << tag;
  std::remove(path.c_str());
}

TEST(Sarif, OutputIsStrictlyValidJson) {
  Report report;
  report.add("BM002", "arc 0->1", "quote \" backslash \\ newline \n done");
  report.add("NL004", "net 'y'", "warning finding");
  expect_valid_json(to_sarif(report, "demo"), "sarif");
}

TEST(Diag, JsonReportIsStrictlyValidJsonWithSchemaVersion) {
  Report report;
  report.add("BM002", "arc 0->1", "quote \" backslash \\ newline \n done");
  const std::string json = report.to_json();
  EXPECT_EQ(json.find("{\"schema_version\":1,"), 0u);
  expect_valid_json(json, "diag");
}

// ---- handshake layer ------------------------------------------------

TEST(LintHandshake, CleanNetlistHasNoFindings) {
  EXPECT_TRUE(lint_handshake(clean_handshake()).empty());
}

TEST(LintHandshake, DanglingChannelIsHS001) {
  hsnet::Netlist net("broken");
  net.declare_channel("a", 0, /*external=*/true);
  net.add(make(ComponentKind::kLoop, {"a", "b"}));
  net.add(make(ComponentKind::kSequence, {"b", "c", "d"}));
  net.add(make(ComponentKind::kContinue, {"c"}));
  // Channel "d" has no peer.
  const Report report = lint_handshake(net);
  ASSERT_TRUE(has_rule(report, "HS001"));
  EXPECT_TRUE(report.has_errors());
  EXPECT_NE(report.to_text().find("channel 'd'"), std::string::npos);
}

TEST(LintHandshake, UnconnectedChannelIsHS002) {
  hsnet::Netlist net = clean_handshake();
  net.declare_channel("ghost");
  const Report report = lint_handshake(net);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"HS002"});
  EXPECT_FALSE(report.has_errors());  // warning only
}

TEST(LintHandshake, OverConnectedChannelIsHS003) {
  hsnet::Netlist net = clean_handshake();
  net.add(make(ComponentKind::kContinue, {"c"}));  // third port on "c"
  const Report report = lint_handshake(net);
  EXPECT_TRUE(has_rule(report, "HS003"));
}

TEST(LintHandshake, TwoActiveEndsAreHS004) {
  hsnet::Netlist net("broken");
  net.declare_channel("a1", 0, /*external=*/true);
  net.declare_channel("a2", 0, /*external=*/true);
  // Both Loops drive channel "b" with their active out port.
  net.add(make(ComponentKind::kLoop, {"a1", "b"}));
  net.add(make(ComponentKind::kLoop, {"a2", "b"}));
  const Report report = lint_handshake(net);
  ASSERT_TRUE(has_rule(report, "HS004"));
  EXPECT_NE(report.to_text().find("two active ports"), std::string::npos);
}

TEST(LintHandshake, TwoPassiveEndsAreHS004) {
  hsnet::Netlist net("broken");
  net.declare_channel("p", 0, /*external=*/true);
  // Passivator and Continue both present a passive end on "q"; nothing
  // ever initiates that handshake.
  net.add(make(ComponentKind::kPassivator, {"p", "q"}));
  net.add(make(ComponentKind::kContinue, {"q"}));
  const Report report = lint_handshake(net);
  ASSERT_TRUE(has_rule(report, "HS004"));
  EXPECT_NE(report.to_text().find("two passive ports"), std::string::npos);
}

TEST(LintHandshake, IslandComponentsAreHS005) {
  hsnet::Netlist net = clean_handshake();
  // A closed two-component island: direction-consistent but unreachable
  // from the external activation.
  net.add(make(ComponentKind::kLoop, {"e", "f"}));
  net.add(make(ComponentKind::kSequence, {"f", "e"}));
  const Report report = lint_handshake(net);
  const auto rules = rules_of(report);
  EXPECT_EQ(rules, (std::vector<std::string>{"HS005", "HS005"}));
  EXPECT_FALSE(report.has_errors());  // warnings only
}

// ---- Burst-Mode layer ----------------------------------------------

TEST(LintBm, CleanSpecHasNoFindings) {
  EXPECT_TRUE(lint_bm(clean_spec()).empty());
}

TEST(LintBm, BidirectionalSignalIsBM001) {
  const auto spec = bm::parse_bms(R"(
name bidi
input a_r 0
output b_a 0
0 1 a_r+ | b_a+
1 0 b_a- | a_r-
)");
  const Report report = lint_bm(spec);
  ASSERT_TRUE(has_rule(report, "BM001"));
  // The message names both witness arcs.
  EXPECT_NE(report.to_text().find("arc 1->0"), std::string::npos);
  EXPECT_NE(report.to_text().find("arc 0->1"), std::string::npos);
}

TEST(LintBm, EmptyInputBurstIsBM002) {
  bm::Spec spec = clean_spec();
  spec.arcs[1].in_burst.transitions.clear();
  const Report report = lint_bm(spec);
  ASSERT_TRUE(has_rule(report, "BM002"));
  EXPECT_NE(report.to_text().find("arc 1->0"), std::string::npos);
}

TEST(LintBm, IdenticalSiblingBurstsAreBM003) {
  const auto spec = bm::parse_bms(R"(
name nondet
input a_r 0
output x_a 0
output y_a 0
0 1 a_r+ | x_a+
0 2 a_r+ | y_a+
)");
  const Report report = lint_bm(spec);
  ASSERT_TRUE(has_rule(report, "BM003"));
  // Each unordered pair is reported exactly once.
  const auto rules = rules_of(report);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "BM003"), 1);
}

TEST(LintBm, SubsetSiblingBurstIsBM004) {
  const auto spec = bm::parse_bms(R"(
name subset
input a_r 0
input b_r 0
output x_a 0
output y_a 0
0 1 a_r+ | x_a+
0 2 a_r+ b_r+ | y_a+
)");
  const Report report = lint_bm(spec);
  ASSERT_TRUE(has_rule(report, "BM004"));
  EXPECT_NE(report.to_text().find("maximal set"), std::string::npos);
}

TEST(LintBm, RepeatedEdgeIsBM005) {
  const auto spec = bm::parse_bms(R"(
name repeat
input a_r 0
output a_a 0
0 1 a_r+ | a_a+
1 0 a_r+ | a_a-
)");
  const Report report = lint_bm(spec);
  ASSERT_TRUE(has_rule(report, "BM005"));
  EXPECT_NE(report.to_text().find("'a_r+'"), std::string::npos);
}

TEST(LintBm, InconsistentEntryValuationIsBM006) {
  const auto spec = bm::parse_bms(R"(
name reentry
input a_r 0
input b_r 0
output x_a 0
0 1 a_r+ | x_a+
0 1 b_r+ |
)");
  const Report report = lint_bm(spec);
  ASSERT_TRUE(has_rule(report, "BM006"));
  EXPECT_NE(report.to_text().find("state 1"), std::string::npos);
}

TEST(LintBm, UnreachableStateIsBM007) {
  const auto spec = bm::parse_bms(R"(
name orphan
input a_r 0
output a_a 0
0 1 a_r+ | a_a+
1 0 a_r- | a_a-
2 0 a_r- | a_a-
)");
  const Report report = lint_bm(spec);
  ASSERT_TRUE(has_rule(report, "BM007"));
  EXPECT_FALSE(report.has_errors());  // unreachable states warn only
  // bm::validate agrees: warnings do not invalidate the machine.
  EXPECT_TRUE(bm::validate(spec).ok);
}

// ---- two-level logic layer -----------------------------------------

TEST(LintTwoLevel, SynthesizedControllerIsClean) {
  const auto spec = clean_spec();
  const auto ctrl = minimalist::synthesize(spec);
  EXPECT_TRUE(lint_two_level(ctrl, spec).empty());
}

TEST(LintTwoLevel, OffIntersectingProductIsMN001) {
  const auto spec = clean_spec();
  auto ctrl = minimalist::synthesize(spec);
  // A tautological product covers the OFF-set too.
  ctrl.functions[0].products.add(logic::Cube(ctrl.num_vars));
  const Report report = lint_two_level(ctrl, spec);
  ASSERT_TRUE(has_rule(report, "MN001"));
  EXPECT_NE(report.to_text().find("OFF-set"), std::string::npos);
}

TEST(LintTwoLevel, UncoveredRequiredCubeIsMN002) {
  const auto spec = clean_spec();
  auto ctrl = minimalist::synthesize(spec);
  // Drop every product of the first output: its required cubes are no
  // longer contained in any single product.
  ctrl.functions[0].products = logic::Cover(ctrl.num_vars);
  const Report report = lint_two_level(ctrl, spec);
  ASSERT_TRUE(has_rule(report, "MN002"));
}

TEST(LintTwoLevel, ShapeMismatchIsMN003) {
  const auto spec = clean_spec();
  auto ctrl = minimalist::synthesize(spec);
  ctrl.functions.pop_back();
  const Report report = lint_two_level(ctrl, spec);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"MN003"});
}

// ---- gate layer -----------------------------------------------------

TEST(LintGates, CleanNetlistHasNoFindings) {
  netlist::GateNetlist net("clean");
  const int a = net.add_net("a");
  net.mark_input(a);
  const int b = add_inv(net, a);
  add_inv(net, b);
  EXPECT_TRUE(lint_gates(net).empty());
}

TEST(LintGates, MultipleDriversAreNL001) {
  netlist::GateNetlist net("broken");
  const int a = net.add_net("a");
  net.mark_input(a);
  const int x = net.add_net("x");
  add_inv(net, a, x);
  add_inv(net, a, x);  // second driver onto the same net
  const Report report = lint_gates(net);
  ASSERT_TRUE(has_rule(report, "NL001"));
  EXPECT_NE(report.to_text().find("net 'x'"), std::string::npos);
}

TEST(LintGates, FloatingInputIsNL002) {
  netlist::GateNetlist net("broken");
  const int a = net.add_net("a");  // never driven, never marked input
  add_inv(net, a);
  const Report report = lint_gates(net);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"NL002"});
}

TEST(LintGates, UnbrokenCombinationalCycleIsNL003) {
  netlist::GateNetlist net("broken");
  const int a = net.add_net("a");
  const int b = net.add_net("b");
  add_inv(net, a, b);
  add_inv(net, b, a);  // two-inverter loop, no delay cell
  const Report report = lint_gates(net);
  ASSERT_TRUE(has_rule(report, "NL003"));
}

TEST(LintGates, DelBrokenCycleIsClean) {
  netlist::GateNetlist net("clean");
  const int a = net.add_net("a");
  const int b = net.add_net("b");
  add_inv(net, a, b);
  net.add_gate("DEL", CellFn::kBuf, {b}, 0.25, 91.0, a);
  EXPECT_FALSE(has_rule(lint_gates(net), "NL003"));
}

TEST(LintGates, CelemBrokenCycleIsClean) {
  netlist::GateNetlist net("clean");
  const int a = net.add_net("a");
  net.mark_input(a);
  const int b = net.add_net("b");
  const int c = net.add_net("c");
  add_inv(net, b, c);
  net.add_gate("C2", CellFn::kCelem, {a, c}, 0.2, 182.0, b);
  EXPECT_FALSE(has_rule(lint_gates(net), "NL003"));
}

TEST(LintGates, FanoutAboveLimitIsNL004) {
  netlist::GateNetlist net("hot");
  const int a = net.add_net("a");
  net.mark_input(a);
  for (int i = 0; i < 3; ++i) add_inv(net, a);
  LintOptions options;
  options.fanout_limit = 2;
  const Report report = lint_gates(net, options);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"NL004"});
  EXPECT_FALSE(report.has_errors());
}

TEST(LintGates, SuppressionSilencesARule) {
  netlist::GateNetlist net("broken");
  const int a = net.add_net("a");
  add_inv(net, a);
  LintOptions options;
  options.suppress = {"NL002"};
  EXPECT_TRUE(lint_gates(net, options).empty());
}

// ---- flow integration ----------------------------------------------

TEST(LintFlow, OptimizedFlowOnDesignsReportsNoErrors) {
  for (const auto* design : designs::all_designs()) {
    const auto net = balsa::compile_source(design->source);
    const auto result =
        flow::synthesize_control(net, flow::FlowOptions::optimized());
    EXPECT_FALSE(result.lint_report.has_errors()) << design->name;
  }
}

TEST(LintFlow, UnoptimizedFlowOnDesignsReportsNoErrors) {
  for (const auto* design : designs::all_designs()) {
    const auto net = balsa::compile_source(design->source);
    const auto result =
        flow::synthesize_control(net, flow::FlowOptions::unoptimized());
    EXPECT_FALSE(result.lint_report.has_errors()) << design->name;
  }
}

TEST(LintFlow, BrokenNetlistAbortsWithLintError) {
  hsnet::Netlist net("broken");
  net.declare_channel("a", 0, /*external=*/true);
  net.add(make(ComponentKind::kLoop, {"a", "b"}));  // "b" dangles
  try {
    flow::synthesize_control(net, flow::FlowOptions::optimized());
    FAIL() << "expected flow::LintError";
  } catch (const flow::LintError& e) {
    EXPECT_TRUE(e.report().has_errors());
    EXPECT_NE(e.stage().find("handshake netlist"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("HS001"), std::string::npos);
  }
}

TEST(LintFlow, LintCanBeDisabled) {
  hsnet::Netlist net("broken");
  net.declare_channel("a", 0, /*external=*/true);
  net.add(make(ComponentKind::kLoop, {"a", "b"}));
  auto options = flow::FlowOptions::optimized();
  options.lint = false;
  const auto result = flow::synthesize_control(net, options);
  EXPECT_TRUE(result.lint_report.empty());
}

TEST(LintFlow, SuppressionFlowsThroughFlowOptions) {
  hsnet::Netlist net("broken");
  net.declare_channel("a", 0, /*external=*/true);
  net.add(make(ComponentKind::kLoop, {"a", "b"}));
  auto options = flow::FlowOptions::optimized();
  options.lint_options.suppress = {"HS001"};
  const auto result = flow::synthesize_control(net, options);
  EXPECT_FALSE(result.lint_report.has_errors());
}

}  // namespace
}  // namespace bb::lint
