// Property-based tests: randomized inputs, invariant checks.
//
//  * logic engine: complement exactness, prime-implicant properties and
//    covering-solution soundness on random functions;
//  * the full synthesis pipeline: randomly generated legal CH programs
//    must expand, compile to valid Burst-Mode machines, synthesize to
//    hazard-free logic, and replay their specifications.
#include <gtest/gtest.h>

#include <random>

#include "src/bm/compile.hpp"
#include "src/bm/validate.hpp"
#include "src/ch/printer.hpp"
#include "src/logic/cover.hpp"
#include "src/logic/primes.hpp"
#include "src/logic/ucp.hpp"
#include "src/minimalist/synth.hpp"

namespace bb {
namespace {

// ---------- logic engine properties ----------

logic::Cover random_cover(std::mt19937& rng, std::size_t num_vars,
                          std::size_t num_cubes) {
  logic::Cover cover(num_vars);
  std::uniform_int_distribution<int> lit(0, 2);
  for (std::size_t c = 0; c < num_cubes; ++c) {
    logic::Cube cube(num_vars);
    for (std::size_t v = 0; v < num_vars; ++v) {
      cube.set(v, static_cast<logic::Lit>(lit(rng)));
    }
    cover.add(std::move(cube));
  }
  return cover;
}

class LogicProperties : public ::testing::TestWithParam<int> {};

TEST_P(LogicProperties, ComplementIsExact) {
  std::mt19937 rng(GetParam());
  const std::size_t n = 5;
  const auto f = random_cover(rng, n, 4);
  const auto g = f.complement();
  for (std::size_t m = 0; m < (1u << n); ++m) {
    std::vector<bool> bits(n);
    for (std::size_t v = 0; v < n; ++v) bits[v] = (m >> v) & 1u;
    EXPECT_NE(f.covers_minterm(bits), g.covers_minterm(bits)) << m;
  }
}

TEST_P(LogicProperties, PrimesAreMaximalImplicantsAndCover) {
  std::mt19937 rng(GetParam() + 1000);
  const std::size_t n = 5;
  const auto on = random_cover(rng, n, 3);
  const auto primes = logic::all_primes(on, logic::Cover(n));
  const auto off = on.complement();

  logic::Cover prime_cover(n, primes);
  for (std::size_t m = 0; m < (1u << n); ++m) {
    std::vector<bool> bits(n);
    for (std::size_t v = 0; v < n; ++v) bits[v] = (m >> v) & 1u;
    // The union of primes equals the function.
    EXPECT_EQ(on.covers_minterm(bits), prime_cover.covers_minterm(bits));
  }
  for (const auto& p : primes) {
    // Implicant: disjoint from the OFF-set.
    for (const auto& o : off.cubes()) {
      EXPECT_FALSE(p.intersects(o)) << p.to_string();
    }
    // Maximal: raising any literal hits the OFF-set.
    for (std::size_t v = 0; v < n; ++v) {
      if (p[v] == logic::Lit::kDash) continue;
      const auto raised = p.raised(v);
      bool hits_off = false;
      for (const auto& o : off.cubes()) {
        if (raised.intersects(o)) hits_off = true;
      }
      EXPECT_TRUE(hits_off) << p.to_string() << " raisable at " << v;
    }
  }
}

TEST_P(LogicProperties, UcpSolutionsCoverEveryRow) {
  std::mt19937 rng(GetParam() + 2000);
  logic::UcpProblem p;
  std::uniform_int_distribution<int> cols(4, 10);
  std::uniform_int_distribution<int> rows(2, 8);
  const int num_cols = cols(rng);
  const int num_rows = rows(rng);
  p.column_cost.assign(num_cols, 1.0);
  std::uniform_int_distribution<int> pick(0, num_cols - 1);
  for (int r = 0; r < num_rows; ++r) {
    std::vector<std::size_t> covering;
    const int k = 1 + pick(rng) % 3;
    for (int i = 0; i < k; ++i) covering.push_back(pick(rng));
    p.covers.push_back(covering);
  }
  const auto sol = logic::solve_ucp(p);
  ASSERT_TRUE(sol.feasible);
  for (int r = 0; r < num_rows; ++r) {
    bool covered = false;
    for (const std::size_t c : p.covers[r]) {
      for (const std::size_t chosen : sol.columns) {
        if (c == chosen) covered = true;
      }
    }
    EXPECT_TRUE(covered) << "row " << r;
  }
  EXPECT_LE(sol.columns.size(), static_cast<std::size_t>(num_rows));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogicProperties, ::testing::Range(1, 13));

// ---------- pipeline properties over random CH programs ----------

/// Generates a random *legal* CH body (activity: active) from the
/// Table 1 "yes" rows, bounded in depth and channel count.
class ChGenerator {
 public:
  explicit ChGenerator(unsigned seed) : rng_(seed) {}

  ch::ExprPtr controller() {
    // Complete controller: passive activation enclosing a random body.
    return ch::rep(
        ch::enc_early(ch::ptop(ch::Activity::kPassive, "go"), body(2)));
  }

 private:
  ch::ExprPtr body(int depth) {
    std::uniform_int_distribution<int> pick(0, depth > 0 ? 4 : 0);
    switch (pick(rng_)) {
      case 0:
        return channel();
      case 1:  // sequencing of two active behaviours (A/A row)
        return ch::seq(body(depth - 1), body(depth - 1));
      case 2:  // enc-early A/A
        return ch::enc_early(channel(), body(depth - 1));
      case 3:  // enc-middle A/A (fork/join)
        return ch::enc_middle(channel(), body(depth - 1));
      case 4:  // seq-ov A/A
        return ch::seq_ov(channel(), body(depth - 1));
    }
    return channel();
  }

  ch::ExprPtr channel() {
    return ch::ptop(ch::Activity::kActive,
                    "c" + std::to_string(next_channel_++));
  }

  std::mt19937 rng_;
  int next_channel_ = 0;
};

class PipelineProperties : public ::testing::TestWithParam<int> {};

TEST_P(PipelineProperties, RandomLegalProgramsSynthesize) {
  ChGenerator gen(GetParam());
  const auto program = gen.controller();

  // 1. Expansion and compilation must succeed (Table 1 legality holds by
  //    construction).
  const bm::Spec spec = bm::compile(*program, "random");
  ASSERT_GT(spec.num_states, 0) << ch::to_string(*program);

  // 2. The machine must be a valid Burst-Mode specification.
  const auto check = bm::validate(spec);
  ASSERT_TRUE(check.ok) << ch::to_string(*program) << "\n"
                        << (check.errors.empty() ? "" : check.errors[0]);

  // 3. Hazard-free synthesis must succeed and replay the specification.
  const auto ctrl = minimalist::synthesize(spec);
  const auto report = minimalist::validate_against_spec(ctrl, spec);
  EXPECT_TRUE(report.ok) << ch::to_string(*program) << "\n"
                         << (report.errors.empty() ? "" : report.errors[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperties, ::testing::Range(1, 25));

}  // namespace
}  // namespace bb
