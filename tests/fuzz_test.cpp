// Unit tests for the differential fuzzer: generators, shrinkers, the
// oracle plumbing, and campaign determinism.
#include <gtest/gtest.h>

#include "src/balsa/compile.hpp"
#include "src/balsa/parser.hpp"
#include "src/balsa/printer.hpp"
#include "src/fuzz/campaign.hpp"
#include "src/fuzz/gen.hpp"
#include "src/fuzz/oracle.hpp"
#include "src/fuzz/proto.hpp"
#include "src/fuzz/shrink.hpp"
#include "src/hsnet/to_ch.hpp"
#include "src/util/prng.hpp"

namespace bb::fuzz {
namespace {

GenOptions small_gen() {
  GenOptions g;
  g.max_commands = 10;
  return g;
}

// ---- generators ----

TEST(Gen, ProcedureIsDeterministic) {
  util::SplitMix64 a(42), b(42);
  const balsa::Procedure pa = generate_procedure(a, small_gen());
  const balsa::Procedure pb = generate_procedure(b, small_gen());
  EXPECT_EQ(balsa::to_source(pa), balsa::to_source(pb));

  util::SplitMix64 c(43);
  const balsa::Procedure pc = generate_procedure(c, small_gen());
  EXPECT_NE(balsa::to_source(pa), balsa::to_source(pc));
}

TEST(Gen, RecipeIsDeterministic) {
  util::SplitMix64 a(42), b(42);
  EXPECT_EQ(recipe_to_text(generate_recipe(a, small_gen())),
            recipe_to_text(generate_recipe(b, small_gen())));
}

TEST(Gen, GeneratedProceduresCompile) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::SplitMix64 rng(seed);
    const balsa::Procedure p = generate_procedure(rng, small_gen());
    const hsnet::Netlist netlist = balsa::compile(p);
    EXPECT_FALSE(netlist.components().empty())
        << "seed " << seed << ":\n" << balsa::to_source(p);
  }
}

TEST(Gen, GeneratedProceduresRoundTripThroughPrinter) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::SplitMix64 rng(seed);
    const balsa::Procedure p = generate_procedure(rng, small_gen());
    const std::string source = balsa::to_source(p);
    const balsa::Procedure reparsed = balsa::parse_procedure(source);
    EXPECT_EQ(source, balsa::to_source(reparsed)) << source;
  }
}

TEST(Gen, RecipeRoundTripsThroughText) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::SplitMix64 rng(seed);
    const RecipeNode r = generate_recipe(rng, small_gen());
    const std::string text = recipe_to_text(r);
    EXPECT_EQ(text, recipe_to_text(parse_recipe(text))) << text;
  }
}

TEST(Gen, ParseRecipeRejectsMalformedInput) {
  EXPECT_THROW(parse_recipe(""), std::runtime_error);
  EXPECT_THROW(parse_recipe("(seq (sync a)"), std::runtime_error);
  EXPECT_THROW(parse_recipe("(frobnicate)"), std::runtime_error);
}

TEST(Gen, BuiltRecipesYieldControlPrograms) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::SplitMix64 rng(seed);
    const RecipeNode r = generate_recipe(rng, small_gen());
    const hsnet::Netlist netlist = build_recipe(r);
    const auto programs = hsnet::control_programs(netlist);
    EXPECT_FALSE(programs.empty()) << recipe_to_text(r);
  }
}

// ---- shrinkers ----

TEST(Shrink, RecipeShrinksToTheInterestingLeaf) {
  const RecipeNode seed = parse_recipe(
      "(seq (par (sync a) (sync b)) (seq (sync c) (skip)) (sync a))");
  const auto still_fails = [](const RecipeNode& candidate) {
    return recipe_to_text(candidate).find("(sync c)") != std::string::npos;
  };
  ASSERT_TRUE(still_fails(seed));
  const RecipeNode shrunk = shrink_recipe(seed, still_fails);
  EXPECT_TRUE(still_fails(shrunk));
  // Nothing but the predicate-relevant leaf should survive.
  EXPECT_EQ(recipe_to_text(shrunk), "(sync c)");
}

TEST(Shrink, ProcedureShrinkKeepsPredicate) {
  util::SplitMix64 rng(7);
  const balsa::Procedure seed = generate_procedure(rng, small_gen());
  const std::size_t seed_size = balsa::to_source(seed).size();
  // "Still fails" = still has a body; the shrinker must find a small
  // program without ever producing one the predicate rejects.
  const auto still_fails = [](const balsa::Procedure& p) {
    return p.body != nullptr;
  };
  const balsa::Procedure shrunk = shrink_procedure(seed, still_fails);
  EXPECT_TRUE(still_fails(shrunk));
  EXPECT_LE(balsa::to_source(shrunk).size(), seed_size);
}

// ---- oracle plumbing ----

TEST(Oracle, CompareObservationsReportsFirstDifference) {
  SimObservation a, b;
  a.completed = b.completed = true;
  a.status = b.status = "ok";
  a.sync_counts = {{"c", 1}};
  b.sync_counts = {{"c", 2}};
  EXPECT_NE(compare_observations(a, b), "");
  b.sync_counts = a.sync_counts;
  EXPECT_EQ(compare_observations(a, b), "");
}

TEST(Oracle, CompareObservationsFlagsCompletion) {
  SimObservation a, b;
  a.completed = true;
  b.completed = false;
  a.status = "ok";
  b.status = "deadlock";
  EXPECT_NE(compare_observations(a, b), "");
}

TEST(Oracle, TrivialRecipePassesBothOracles) {
  const hsnet::Netlist netlist =
      build_recipe(parse_recipe("(seq (sync a) (sync b))"));
  FuzzOptions options;
  const OracleResult result = check_design(netlist, options, 1);
  EXPECT_EQ(result.verdict, Verdict::kPass) << result.detail;
}

// ---- campaign determinism ----

TEST(Campaign, JsonArtifactIsByteIdenticalAcrossRuns) {
  FuzzOptions options;
  options.seed = 5;
  options.count = 4;
  options.size = 8;
  const FuzzResult a = run_fuzz_campaign(options);
  const FuzzResult b = run_fuzz_campaign(options);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_NE(a.to_json().find("\"schema_version\":1"), std::string::npos);
  EXPECT_EQ(a.cases_run, 8);  // both modes enabled
}

TEST(Campaign, EffectiveSeedPrefersExplicitValue) {
  FuzzOptions options;
  options.seed = 17;
  EXPECT_EQ(effective_seed(options), 17u);
}

// ---- protocol / malformed-input fuzzing ----

TEST(ProtoFuzz, CampaignIsDeterministicAndCleanOnTheCurrentCode) {
  ProtoFuzzOptions options;
  options.seed = 11;
  options.count = 60;  // per target, small enough for a unit test
  const ProtoFuzzResult a = run_proto_fuzz(options);
  const ProtoFuzzResult b = run_proto_fuzz(options);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.violations, 0) << a.to_text();
  EXPECT_EQ(a.cases_run, 180);  // three targets
  // Mutated inputs must actually exercise the reject paths.
  EXPECT_GT(a.rejected, 0);
  EXPECT_NE(a.to_json().find("\"schema_version\":1"), std::string::npos);
}

// ---- reproducer corpus format ----

TEST(Corpus, ReproducerRoundTrips) {
  Reproducer r;
  r.mode = "netlist";
  r.oracle = "sim";
  r.expect = "clean";
  r.design = "(seq (sync a) (sync b))\n";
  const std::string text = format_reproducer(r, 2, 31, "counts differ");
  const Reproducer back = parse_reproducer("x.recipe", text);
  EXPECT_EQ(back.mode, "netlist");
  EXPECT_EQ(back.oracle, "sim");
  EXPECT_EQ(back.expect, "clean");
  EXPECT_EQ(back.design, "(seq (sync a) (sync b))\n");
}

TEST(Corpus, ParseReproducerRejectsMissingHeaders) {
  EXPECT_THROW(parse_reproducer("x", "(sync a)\n"), std::runtime_error);
  EXPECT_THROW(
      parse_reproducer("x", "-- mode: netlist\n-- expect: clean\n"),
      std::runtime_error);
}

}  // namespace
}  // namespace bb::fuzz
