// Burst-Mode synthesis (Minimalist substitute): every controller the flow
// produces must synthesize into hazard-free two-level logic that replays
// its specification exactly.
#include <gtest/gtest.h>

#include "src/bm/compile.hpp"
#include "src/bm/validate.hpp"
#include "src/ch/parser.hpp"
#include "src/minimalist/synth.hpp"
#include "src/opt/cluster.hpp"

namespace bb::minimalist {
namespace {

bm::Spec spec_of(const std::string& source, const std::string& name) {
  const bm::Spec spec = bm::compile(*ch::parse(source), name);
  const auto check = bm::validate(spec);
  EXPECT_TRUE(check.ok) << name;
  return spec;
}

void expect_synthesizes(const std::string& source, const std::string& name,
                        SynthMode mode = SynthMode::kSpeed) {
  const bm::Spec spec = spec_of(source, name);
  const SynthesizedController ctrl = synthesize(spec, mode);
  const ValidationReport report = validate_against_spec(ctrl, spec);
  EXPECT_TRUE(report.ok) << name << ": "
                         << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_GT(ctrl.num_products(), 0u);
}

constexpr const char* kSequencer =
    "(rep (enc-early (p-to-p passive P)"
    "  (seq (p-to-p active A1) (p-to-p active A2))))";
constexpr const char* kCall =
    "(rep (mutex (enc-early (p-to-p passive A1) (p-to-p active B))"
    "            (enc-early (p-to-p passive A2) (p-to-p active B))))";
constexpr const char* kPassivator =
    "(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))";

TEST(Extract, SequencerShape) {
  const MachineSpec m = extract(spec_of(kSequencer, "sequencer"));
  EXPECT_EQ(m.inputs.size(), 3u);       // p_r, a1_a, a2_a
  EXPECT_EQ(m.state_bits.size(), 6u);   // one per state
  EXPECT_EQ(m.functions.size(), 3u + 6u);
  EXPECT_EQ(m.num_vars, 9u);
  // Initial code is one-hot state 0.
  EXPECT_TRUE(m.initial_state_code[0]);
  for (std::size_t s = 1; s < 6; ++s) EXPECT_FALSE(m.initial_state_code[s]);
}

TEST(Extract, StateCodesCoverEveryState) {
  // The validator derives per-state bit patterns from the machine's
  // actual assignment instead of assuming bit index == state id.
  const bm::Spec spec = spec_of(kSequencer, "sequencer");
  const MachineSpec m = extract(spec);
  ASSERT_EQ(m.state_codes.size(), static_cast<std::size_t>(spec.num_states));
  for (int s = 0; s < spec.num_states; ++s) {
    ASSERT_EQ(m.state_codes[s].size(), m.state_bits.size());
    for (std::size_t bit = 0; bit < m.state_bits.size(); ++bit) {
      EXPECT_EQ(m.state_codes[s][bit], static_cast<int>(bit) == s);
    }
  }
  EXPECT_EQ(m.initial_state_code, m.state_codes[spec.initial_state]);

  const SynthesizedController ctrl = synthesize(spec);
  EXPECT_EQ(ctrl.state_codes, m.state_codes);
  EXPECT_EQ(ctrl.state_code(1), m.state_codes[1]);
}

TEST(Validate, UsesStateAssignmentNotStateIds) {
  // A controller whose state_codes disagree with the one-hot-by-id
  // assumption must be validated against its recorded codes: permuting
  // the codes (without permuting the logic) must now fail validation
  // loudly instead of silently checking the wrong configuration.
  const bm::Spec spec = spec_of(kSequencer, "sequencer");
  SynthesizedController ctrl = synthesize(spec);
  ASSERT_TRUE(validate_against_spec(ctrl, spec).ok);
  std::swap(ctrl.state_codes[0], ctrl.state_codes[1]);
  EXPECT_FALSE(validate_against_spec(ctrl, spec).ok);
}

TEST(Extract, FunctionsHaveConsistentSpecs) {
  const MachineSpec m = extract(spec_of(kCall, "call"));
  for (const FuncSpec& f : m.functions) {
    for (const auto& c : f.on_required) {
      for (const auto& off : f.off.cubes()) {
        EXPECT_FALSE(c.intersects(off)) << f.name;
      }
    }
  }
}

TEST(Synthesize, Sequencer) { expect_synthesizes(kSequencer, "sequencer"); }
TEST(Synthesize, Call) { expect_synthesizes(kCall, "call"); }
TEST(Synthesize, Passivator) { expect_synthesizes(kPassivator, "passivator"); }

TEST(Synthesize, Loop) {
  expect_synthesizes(
      "(enc-early (p-to-p passive a) (rep (p-to-p active b)))", "loop");
}

TEST(Synthesize, Concur) {
  expect_synthesizes(
      "(rep (enc-middle (p-to-p passive a)"
      "  (enc-middle (p-to-p active b1) (p-to-p active b2))))",
      "concur");
}

TEST(Synthesize, While) {
  expect_synthesizes(
      "(rep (enc-early (p-to-p passive a)"
      "  (rep (mux-ack g (seq (p-to-p active b)) (seq (break))))))",
      "while");
}

TEST(Synthesize, DecisionWait) {
  expect_synthesizes(
      "(rep (enc-early (p-to-p passive a1)"
      "  (mutex (enc-early (p-to-p passive i1) (p-to-p active o1))"
      "         (enc-early (p-to-p passive i2) (p-to-p active o2)))))",
      "dw");
}

TEST(Synthesize, Synch) {
  expect_synthesizes(
      "(rep (enc-middle (p-to-p passive i1)"
      "  (enc-middle (p-to-p passive i2) (p-to-p active o))))",
      "synch");
}

TEST(Synthesize, ThreeWaySequencer) {
  expect_synthesizes(
      "(rep (enc-early (p-to-p passive P)"
      "  (seq (p-to-p active A1) (seq (p-to-p active A2)"
      "       (p-to-p active A3)))))",
      "seq3");
}

TEST(Synthesize, Fig4MergedController) {
  // The Section 4.1 clustered decision-wait + sequencer.
  std::vector<ch::Program> programs;
  programs.emplace_back(
      "DW", ch::parse("(rep (enc-early (p-to-p passive a1)"
                      "  (mutex (enc-early (p-to-p passive i1)"
                      "                    (p-to-p active o1))"
                      "         (enc-early (p-to-p passive i2)"
                      "                    (p-to-p active o2)))))"));
  programs.emplace_back(
      "SEQ", ch::parse("(rep (enc-early (p-to-p passive o2)"
                       "  (seq (p-to-p active c1) (p-to-p active c2))))"));
  const auto clustered = opt::optimize(std::move(programs));
  ASSERT_EQ(clustered.size(), 1u);
  const bm::Spec spec = bm::compile(*clustered[0].program.body, "fig4");
  const SynthesizedController ctrl = synthesize(spec);
  const auto report = validate_against_spec(ctrl, spec);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(Synthesize, Fig5MergedController) {
  expect_synthesizes(
      "(rep (enc-early (p-to-p passive a)"
      "  (seq (enc-early void (p-to-p active c))"
      "       (enc-early void (p-to-p active c)))))",
      "fig5");
}

TEST(Synthesize, AreaModeUsesFewerOrEqualLiterals) {
  const bm::Spec spec = spec_of(kSequencer, "sequencer");
  const auto speed = synthesize(spec, SynthMode::kSpeed);
  const auto area = synthesize(spec, SynthMode::kArea);
  EXPECT_LE(area.num_literals(), speed.num_literals());
  const auto report = validate_against_spec(area, spec);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(Synthesize, SolOutputListsAllFunctions) {
  const auto ctrl = synthesize(spec_of(kPassivator, "passivator"));
  const std::string sol = ctrl.to_sol();
  EXPECT_NE(sol.find(".fn a_a"), std::string::npos);
  EXPECT_NE(sol.find(".fn b_a"), std::string::npos);
  EXPECT_NE(sol.find(".fn y0 (state)"), std::string::npos);
}

TEST(Hfmin, DhfImplicantCheck) {
  FuncSpec f;
  f.off = logic::Cover(3);
  f.off.add(logic::Cube::parse("11-"));
  EXPECT_TRUE(is_dhf_implicant(logic::Cube::parse("0--"), f));
  EXPECT_FALSE(is_dhf_implicant(logic::Cube::parse("1--"), f));

  // Privileged transition: products intersecting "--0" must contain "000".
  f.privileges.push_back(
      Privilege{logic::Cube::parse("--0"), logic::Cube::parse("000")});
  EXPECT_TRUE(is_dhf_implicant(logic::Cube::parse("0--"), f));
  EXPECT_FALSE(is_dhf_implicant(logic::Cube::parse("01-"), f));
}

TEST(Hfmin, ConstantZeroFunction) {
  FuncSpec f;
  f.name = "z";
  f.off = logic::Cover(2);
  f.off.add(logic::Cube::parse("--"));
  const auto solved = minimize_function(f, 2, 2, SynthMode::kSpeed);
  EXPECT_TRUE(solved.products.empty());
}

TEST(Hfmin, RequiredCubeMustBeImplicant) {
  FuncSpec f;
  f.name = "z";
  f.off = logic::Cover(2);
  f.off.add(logic::Cube::parse("1-"));
  f.on_required.push_back(logic::Cube::parse("--"));  // overlaps OFF
  EXPECT_THROW(minimize_function(f, 2, 2, SynthMode::kSpeed),
               std::runtime_error);
}

TEST(Validate, RejectsBrokenController) {
  const bm::Spec spec = spec_of(kPassivator, "passivator");
  SynthesizedController ctrl = synthesize(spec);
  // Sabotage: drop the products of the first output.
  ctrl.functions[0].products = logic::Cover(ctrl.num_vars);
  const auto report = validate_against_spec(ctrl, spec);
  EXPECT_FALSE(report.ok);
}

}  // namespace
}  // namespace bb::minimalist
