#include "src/ch/parser.hpp"

#include <gtest/gtest.h>

#include "src/ch/printer.hpp"

namespace bb::ch {
namespace {

TEST(Parser, PToP) {
  auto e = parse("(p-to-p passive A)");
  EXPECT_EQ(e->kind, ExprKind::kPToP);
  EXPECT_EQ(e->declared_activity, Activity::kPassive);
  EXPECT_EQ(e->channel, "A");
}

TEST(Parser, UnderscoreKeywordAlias) {
  // The paper writes both "mux-ack" and "mux_ack"; accept either.
  auto e = parse("(p_to_p active B)");
  EXPECT_EQ(e->kind, ExprKind::kPToP);
  EXPECT_EQ(e->declared_activity, Activity::kActive);
}

TEST(Parser, MultChannels) {
  auto e = parse("(mult-ack active c 2)");
  EXPECT_EQ(e->kind, ExprKind::kMultAck);
  EXPECT_EQ(e->wires, 2);
  auto e2 = parse("(mult-req passive d 3)");
  EXPECT_EQ(e2->kind, ExprKind::kMultReq);
  EXPECT_EQ(e2->wires, 3);
}

TEST(Parser, SequencerFromPaper) {
  // Section 3.4 sequencer.
  auto e = parse(R"((rep (enc-early (p-to-p passive P)
                     (seq (p-to-p active A1)
                          (p-to-p active A2)))))");
  ASSERT_EQ(e->kind, ExprKind::kRep);
  const Expr& enc = *e->args[0];
  ASSERT_EQ(enc.kind, ExprKind::kEncEarly);
  EXPECT_EQ(enc.args[0]->channel, "P");
  EXPECT_EQ(enc.args[1]->kind, ExprKind::kSeq);
}

TEST(Parser, SeqRightAssociates) {
  // (seq c1 c2 c3) == (seq c1 (seq c2 c3))  per Section 3.3.
  auto e = parse("(seq (p-to-p active c1) (p-to-p active c2) "
                 "(p-to-p active c3))");
  ASSERT_EQ(e->kind, ExprKind::kSeq);
  EXPECT_EQ(e->args[0]->channel, "c1");
  ASSERT_EQ(e->args[1]->kind, ExprKind::kSeq);
  EXPECT_EQ(e->args[1]->args[0]->channel, "c2");
  EXPECT_EQ(e->args[1]->args[1]->channel, "c3");
}

TEST(Parser, MutexRightAssociates) {
  auto e = parse("(mutex (p-to-p passive a) (p-to-p passive b) "
                 "(p-to-p passive c))");
  ASSERT_EQ(e->kind, ExprKind::kMutex);
  EXPECT_EQ(e->args[1]->kind, ExprKind::kMutex);
}

TEST(Parser, MuxAck) {
  auto e = parse("(mux-ack g (seq (p-to-p active b)) (seq (break)))");
  ASSERT_EQ(e->kind, ExprKind::kMuxAck);
  ASSERT_EQ(e->branches.size(), 2u);
  EXPECT_EQ(e->branches[0].op, ExprKind::kSeq);
  EXPECT_EQ(e->branches[0].body->channel, "b");
  EXPECT_EQ(e->branches[1].body->kind, ExprKind::kBreak);
}

TEST(Parser, MuxReq) {
  auto e = parse("(mux-req a (enc-early (p-to-p active x)) "
                 "(enc-early (p-to-p active y)))");
  ASSERT_EQ(e->kind, ExprKind::kMuxReq);
  ASSERT_EQ(e->branches.size(), 2u);
}

TEST(Parser, VoidForms) {
  EXPECT_EQ(parse("void")->kind, ExprKind::kVoid);
  EXPECT_EQ(parse("(void)")->kind, ExprKind::kVoid);
}

TEST(Parser, Verb) {
  auto e = parse("(verb ((i x_r +)) ((o x_a +)) ((i x_r -)) ((o x_a -)))");
  ASSERT_EQ(e->kind, ExprKind::kVerb);
  ASSERT_EQ(e->verb_events[0].size(), 1u);
  EXPECT_TRUE(e->verb_events[0][0].is_input);
  EXPECT_EQ(e->verb_events[0][0].signal, "x_r");
  EXPECT_TRUE(e->verb_events[0][0].rising);
  EXPECT_FALSE(e->verb_events[3][0].rising);
}

TEST(Parser, Comments) {
  auto e = parse("; the activation channel\n(p-to-p passive A) ; done");
  EXPECT_EQ(e->channel, "A");
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("(p-to-p sideways A)"), ParseError);
  EXPECT_THROW(parse("(p-to-p passive)"), ParseError);
  EXPECT_THROW(parse("(rep)"), ParseError);
  EXPECT_THROW(parse("(rep (break) (break))"), ParseError);
  EXPECT_THROW(parse("(enc-early (p-to-p passive a))"), ParseError);
  EXPECT_THROW(parse("(frobnicate x y)"), ParseError);
  EXPECT_THROW(parse("(p-to-p passive A) extra"), ParseError);
  EXPECT_THROW(parse("(mult-ack active c 0)"), ParseError);
  EXPECT_THROW(parse("(mux-ack g)"), ParseError);
}

TEST(Parser, RoundTripThroughPrinter) {
  const std::string source =
      "(rep (mutex (enc-early (p-to-p passive A1) (p-to-p active B)) "
      "(enc-early (p-to-p passive A2) (p-to-p active B))))";
  auto e = parse(source);
  auto e2 = parse(to_string(*e));
  EXPECT_EQ(to_string(*e), to_string(*e2));
}

TEST(Parser, ProgramWithName) {
  const Program p = parse_program("SEQ : (p-to-p passive a)");
  EXPECT_EQ(p.name, "SEQ");
  EXPECT_EQ(p.body->channel, "a");
}

TEST(Parser, ProgramWithoutName) {
  const Program p = parse_program("(p-to-p passive a)");
  EXPECT_EQ(p.name, "");
  ASSERT_NE(p.body, nullptr);
}

}  // namespace
}  // namespace bb::ch
