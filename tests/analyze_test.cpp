// The deep semantic passes (src/analyze): a known-bad fixture per AN/PN/
// NL rule, known-good fixtures that must stay clean, and the pass
// registry itself.
#include "src/analyze/analyze.hpp"

#include <gtest/gtest.h>

#include "src/bm/compile.hpp"
#include "src/bm/parse.hpp"
#include "src/ch/parser.hpp"
#include "src/logic/cover.hpp"
#include "src/minimalist/synth.hpp"
#include "src/techmap/map.hpp"

namespace bb::analyze {
namespace {

using lint::Report;
using lint::Severity;

std::vector<std::string> rules_of(const Report& report) {
  std::vector<std::string> out;
  for (const lint::Diagnostic& d : report.diagnostics()) out.push_back(d.rule);
  return out;
}

bool has_rule(const Report& report, std::string_view id) {
  for (const lint::Diagnostic& d : report.diagnostics()) {
    if (d.rule == id) return true;
  }
  return false;
}

// ---- pass registry -------------------------------------------------

TEST(Registry, EveryPassRuleIsRegistered) {
  const auto& passes = all_passes();
  ASSERT_EQ(passes.size(), 3u);
  for (const PassInfo& pass : passes) {
    EXPECT_FALSE(pass.name.empty());
    EXPECT_FALSE(pass.layer.empty());
    // Every comma-separated rule id must exist in the shared registry.
    std::string id;
    const std::string rules(pass.rules);
    for (std::size_t i = 0; i <= rules.size(); ++i) {
      if (i == rules.size() || rules[i] == ',' || rules[i] == ' ') {
        if (!id.empty()) EXPECT_NE(lint::find_rule(id), nullptr) << id;
        id.clear();
      } else {
        id += rules[i];
      }
    }
  }
}

// ---- AN: deep Burst-Mode legality ----------------------------------

TEST(AnalyzeBm, CleanWireMachineIsClean) {
  const auto spec = bm::parse_bms(R"(
name wire
0 1 a+ | x+
1 0 a- | x-
)");
  EXPECT_TRUE(analyze_bm(spec).empty());
}

TEST(AnalyzeBm, An001ConflictingEntryValuationOnMonitoredSignal) {
  // State 3 is reached with a=1 (via 1) and a=0 (via 2), and its only
  // outgoing arc monitors 'a'.
  const auto spec = bm::parse_bms(R"(
0 1 a+ | x+
0 2 b+ | y+
1 3 c+ | z+
2 3 c+ | z+
3 4 a- | w+
)");
  const Report report = analyze_bm(spec);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"AN001"});
  EXPECT_NE(report.diagnostics()[0].message.find("a"), std::string::npos);
}

TEST(AnalyzeBm, An002EffectiveSubsetTrigger) {
  const auto spec = bm::parse_bms(R"(
0 1 a+ | x+
0 2 a+ b+ | y+
)");
  const Report report = analyze_bm(spec);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"AN002"});
}

TEST(AnalyzeBm, An002IndistinguishableDuplicateArcs) {
  const auto spec = bm::parse_bms(R"(
0 1 a+ | x+
0 1 a+ | x+
)");
  const Report report = analyze_bm(spec);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"AN002"});
  EXPECT_NE(report.diagnostics()[0].message.find("duplicates"),
            std::string::npos);
}

TEST(AnalyzeBm, An003SameTriggerDivergingResponses) {
  const auto spec = bm::parse_bms(R"(
0 1 a+ | x+
0 2 a+ | y+
)");
  const Report report = analyze_bm(spec);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"AN003"});
}

TEST(AnalyzeBm, An003OutputEdgeThatDoesNotToggle) {
  // x is already high when arc 1->2 fires x+ again.
  const auto spec = bm::parse_bms(R"(
0 1 a+ | x+
1 2 a- | x+
)");
  const Report report = analyze_bm(spec);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"AN003"});
  EXPECT_NE(report.diagnostics()[0].message.find("already 1"),
            std::string::npos);
}

TEST(AnalyzeBm, An004PreSatisfiedInputEdge) {
  // a is already high on entry to state 1; the a+ edge can never occur.
  const auto spec = bm::parse_bms(R"(
0 1 a+ | x+
1 2 a+ b+ | y+
)");
  const Report report = analyze_bm(spec);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"AN004"});
  EXPECT_EQ(report.count(Severity::kWarning), 1u);
}

TEST(AnalyzeBm, An004SinglePolarityWireOnCycle) {
  // a and b only ever rise yet drive the 0->1->0 loop.
  const auto spec = bm::parse_bms(R"(
0 1 a+ | x+
1 0 b+ | x-
)");
  const Report report = analyze_bm(spec);
  EXPECT_TRUE(has_rule(report, "AN004"));
}

// ---- PN: structural Petri-net passes --------------------------------

TEST(AnalyzePetri, MarkedCycleIsClean) {
  petri::PetriNet net;
  const int p0 = net.add_place(/*marked=*/true);
  const int p1 = net.add_place();
  net.add_transition({"a+", {p0}, {p1}});
  net.add_transition({"a-", {p1}, {p0}});
  EXPECT_TRUE(analyze_petri(net, "ring").empty());
}

TEST(AnalyzePetri, Pn001DeadTransitionAndPn002Siphon) {
  petri::PetriNet net;
  const int p0 = net.add_place(/*marked=*/true);
  const int p1 = net.add_place();
  const int p2 = net.add_place();
  net.add_transition({"live", {p0}, {p0}});
  net.add_transition({"dead", {p1}, {p2}});
  const Report report = analyze_petri(net, "demo");
  EXPECT_TRUE(has_rule(report, "PN001"));
  EXPECT_TRUE(has_rule(report, "PN002"));
  EXPECT_FALSE(has_rule(report, "PN003"));
  // The siphon is exactly the two places tokens can never reach.
  bool saw_siphon = false;
  for (const lint::Diagnostic& d : report.diagnostics()) {
    if (d.rule != "PN002") continue;
    saw_siphon = true;
    EXPECT_NE(d.message.find("p1"), std::string::npos);
    EXPECT_NE(d.message.find("p2"), std::string::npos);
  }
  EXPECT_TRUE(saw_siphon);
}

TEST(AnalyzePetri, Pn003NoMarkedTrapWhenTokensDrain) {
  petri::PetriNet net;
  const int p0 = net.add_place(/*marked=*/true);
  net.add_transition({"drain", {p0}, {}});
  const Report report = analyze_petri(net, "demo");
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"PN003"});
  EXPECT_EQ(report.count(Severity::kWarning), 1u);
}

TEST(AnalyzePetri, Pn004EmptyPreSet) {
  petri::PetriNet net;
  const int p0 = net.add_place(/*marked=*/true);
  net.add_transition({"spont", {}, {p0}});
  net.add_transition({"sink", {p0}, {}});
  const Report report = analyze_petri(net, "demo");
  EXPECT_TRUE(has_rule(report, "PN004"));
  EXPECT_FALSE(has_rule(report, "PN001"));
}

// ---- NL: semantic netlist audit ------------------------------------

/// A hand-built controller: x = a*b + a*c over inputs (a, b, c).
minimalist::SynthesizedController abc_controller() {
  minimalist::SynthesizedController ctrl;
  ctrl.name = "abc";
  ctrl.inputs = {"a", "b", "c"};
  ctrl.outputs = {"x"};
  ctrl.num_vars = 3;
  minimalist::SolvedFunction f;
  f.name = "x";
  f.products = logic::Cover::parse(3, "11-\n1-1");
  ctrl.functions.push_back(std::move(f));
  return ctrl;
}

netlist::GateNetlist abc_nets(int* a, int* b, int* c, int* x) {
  netlist::GateNetlist net("abc");
  *a = net.add_net("a");
  *b = net.add_net("b");
  *c = net.add_net("c");
  *x = net.add_net("x");
  net.mark_input(*a);
  net.mark_input(*b);
  net.mark_input(*c);
  return net;
}

TEST(AnalyzeMapped, SumOfProductsDecompositionIsClean) {
  // x = (a AND b) OR (a AND c): every intermediate net is a cover
  // product and the root is the union of all products.
  int a, b, c, x;
  auto net = abc_nets(&a, &b, &c, &x);
  const int n1 = net.add_gate("AND2", netlist::CellFn::kAnd, {a, b}, 0.1, 10);
  const int n2 = net.add_gate("AND2", netlist::CellFn::kAnd, {a, c}, 0.1, 10);
  net.add_gate("OR2", netlist::CellFn::kOr, {n1, n2}, 0.1, 10, x);
  EXPECT_TRUE(analyze_mapped(net, abc_controller(), "").empty());
}

TEST(AnalyzeMapped, Nl005HazardIncreasingFactoring) {
  // x = a AND (b OR c) computes the same function, but the intermediate
  // net (b OR c) is neither a partial product nor a union of products:
  // the distributive re-factoring can reintroduce hazards.
  int a, b, c, x;
  auto net = abc_nets(&a, &b, &c, &x);
  const int n1 = net.add_net("b_or_c");
  net.add_gate("OR2", netlist::CellFn::kOr, {b, c}, 0.1, 10, n1);
  net.add_gate("AND2", netlist::CellFn::kAnd, {a, n1}, 0.1, 10, x);
  const Report report = analyze_mapped(net, abc_controller(), "");
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"NL005"});
  EXPECT_NE(report.diagnostics()[0].object.find("b_or_c"), std::string::npos);
  EXPECT_FALSE(has_rule(report, "NL006"));  // the function itself is right
}

TEST(AnalyzeMapped, Nl006FunctionMismatchWithCounterexample) {
  // The netlist drives x with a plain OR: wrong function.
  int a, b, c, x;
  auto net = abc_nets(&a, &b, &c, &x);
  net.add_gate("OR2", netlist::CellFn::kOr, {b, c}, 0.1, 10, x);
  const Report report = analyze_mapped(net, abc_controller(), "");
  EXPECT_TRUE(has_rule(report, "NL006"));
  bool saw_minterm = false;
  for (const lint::Diagnostic& d : report.diagnostics()) {
    if (d.rule == "NL006") {
      saw_minterm = d.message.find("minterm") != std::string::npos;
    }
  }
  EXPECT_TRUE(saw_minterm);
}

TEST(AnalyzeMapped, Nl007ConeAboveEvaluationLimit) {
  int a, b, c, x;
  auto net = abc_nets(&a, &b, &c, &x);
  const int n1 = net.add_gate("AND2", netlist::CellFn::kAnd, {a, b}, 0.1, 10);
  const int n2 = net.add_gate("AND2", netlist::CellFn::kAnd, {a, c}, 0.1, 10);
  net.add_gate("OR2", netlist::CellFn::kOr, {n1, n2}, 0.1, 10, x);
  lint::LintOptions options;
  options.cone_eval_limit = 1;  // force the skip path
  const Report report = analyze_mapped(net, abc_controller(), "", options);
  EXPECT_EQ(rules_of(report), std::vector<std::string>{"NL007"});
  EXPECT_EQ(report.count(Severity::kNote), 1u);
  EXPECT_FALSE(report.has_errors());
}

TEST(AnalyzeMapped, RealMappedControllerIsClean) {
  // End to end: compile a CH program, synthesize, tech-map, audit.  The
  // mapper only applies hazard-non-increasing decompositions, so the
  // audit must come back clean (DOUT/DEL roots are unwrapped).
  const auto spec = bm::compile(
      *ch::parse("(rep (enc-early (p-to-p passive P)"
                 " (seq (p-to-p active A1) (p-to-p active A2))))"),
      "seq");
  const auto ctrl = minimalist::synthesize(spec);
  const auto net = techmap::map_controller(
      ctrl, techmap::CellLibrary::ams035(), {}, "p");
  const Report report = analyze_mapped(net, ctrl, "p");
  EXPECT_EQ(report.count(Severity::kError), 0u) << report.to_text();
  EXPECT_EQ(report.count(Severity::kWarning), 0u) << report.to_text();
}

}  // namespace
}  // namespace bb::analyze
