// Hand-template circuits (the Balsa component-library baseline): each
// template must execute its four-phase protocol correctly in the event
// simulator.
#include "src/techmap/templates.hpp"

#include <gtest/gtest.h>

#include "src/sim/gatesim.hpp"

namespace bb::techmap {
namespace {

using hsnet::Component;
using hsnet::ComponentKind;

Component make(ComponentKind kind, std::vector<std::string> ports,
               int ways = 0) {
  Component c;
  c.kind = kind;
  c.ports = std::move(ports);
  c.ways = ways;
  return c;
}

/// Drives template circuits through handshakes.
class Harness {
 public:
  explicit Harness(const Component& comp)
      : netlist_(*template_circuit(comp, CellLibrary::ams035())),
        binding_(netlist_),
        sim_(netlist_.num_nets()) {
    binding_.bind(sim_);
    binding_.settle_initial(sim_);
  }

  int net(const std::string& name) {
    const int id = netlist_.net(name);
    EXPECT_GE(id, 0) << name;
    return id;
  }
  bool value(const std::string& name) { return sim_.value(net(name)); }
  void set(const std::string& name, bool v) {
    sim_.schedule(net(name), v, 0.8);
    EXPECT_TRUE(sim_.run());
  }
  double area() const { return netlist_.total_area(); }

 private:
  netlist::GateNetlist netlist_;
  sim::GateBinding binding_;
  sim::Simulator sim_;
};

TEST(Templates, Availability) {
  EXPECT_TRUE(has_template(ComponentKind::kSequence));
  EXPECT_TRUE(has_template(ComponentKind::kCall));
  EXPECT_TRUE(has_template(ComponentKind::kLoop));
  EXPECT_FALSE(has_template(ComponentKind::kWhile));
  EXPECT_FALSE(has_template(ComponentKind::kCase));
  EXPECT_FALSE(has_template(ComponentKind::kVariable));
  EXPECT_FALSE(
      template_circuit(make(ComponentKind::kWhile, {"a", "g", "b"}),
                       CellLibrary::ams035())
          .has_value());
}

TEST(Templates, Continue) {
  Harness h(make(ComponentKind::kContinue, {"a"}));
  EXPECT_FALSE(h.value("a_a"));
  h.set("a_r", true);
  EXPECT_TRUE(h.value("a_a"));
  h.set("a_r", false);
  EXPECT_FALSE(h.value("a_a"));
}

TEST(Templates, Loop) {
  Harness h(make(ComponentKind::kLoop, {"a", "b"}));
  EXPECT_FALSE(h.value("b_r"));
  h.set("a_r", true);
  EXPECT_TRUE(h.value("b_r"));
  h.set("b_a", true);
  EXPECT_FALSE(h.value("b_r"));
  h.set("b_a", false);
  EXPECT_TRUE(h.value("b_r")) << "loop must re-request";
  EXPECT_FALSE(h.value("a_a")) << "loop never acknowledges its activation";
}

TEST(Templates, SequenceTwoWay) {
  Harness h(make(ComponentKind::kSequence, {"a", "b1", "b2"}, 2));
  h.set("a_r", true);
  EXPECT_TRUE(h.value("b1_r"));
  EXPECT_FALSE(h.value("b2_r"));
  h.set("b1_a", true);
  EXPECT_FALSE(h.value("b1_r"));
  h.set("b1_a", false);
  EXPECT_TRUE(h.value("b2_r")) << "second branch starts after the first";
  h.set("b2_a", true);
  EXPECT_FALSE(h.value("b2_r"));
  h.set("b2_a", false);
  EXPECT_TRUE(h.value("a_a")) << "activation acknowledged after both";
  h.set("a_r", false);
  EXPECT_FALSE(h.value("a_a"));
  // Second activation must work identically.
  h.set("a_r", true);
  EXPECT_TRUE(h.value("b1_r"));
}

TEST(Templates, SequenceFourWayOrder) {
  Harness h(make(ComponentKind::kSequence, {"a", "b1", "b2", "b3", "b4"}, 4));
  h.set("a_r", true);
  for (const char* b : {"b1", "b2", "b3", "b4"}) {
    EXPECT_TRUE(h.value(std::string(b) + "_r")) << b;
    h.set(std::string(b) + "_a", true);
    h.set(std::string(b) + "_a", false);
  }
  EXPECT_TRUE(h.value("a_a"));
}

TEST(Templates, Concur) {
  Harness h(make(ComponentKind::kConcur, {"a", "b1", "b2"}, 2));
  h.set("a_r", true);
  EXPECT_TRUE(h.value("b1_r"));
  EXPECT_TRUE(h.value("b2_r")) << "both branches start in parallel";
  h.set("b1_a", true);
  EXPECT_FALSE(h.value("a_a")) << "join waits for every branch";
  h.set("b2_a", true);
  EXPECT_TRUE(h.value("a_a"));
  h.set("a_r", false);
  EXPECT_FALSE(h.value("b1_r"));
  EXPECT_FALSE(h.value("b2_r"));
  h.set("b1_a", false);
  h.set("b2_a", false);
  EXPECT_FALSE(h.value("a_a"));
}

TEST(Templates, CallTwoWay) {
  Harness h(make(ComponentKind::kCall, {"a1", "a2", "b"}, 2));
  h.set("a1_r", true);
  EXPECT_TRUE(h.value("b_r"));
  h.set("b_a", true);
  EXPECT_TRUE(h.value("a1_a"));
  EXPECT_FALSE(h.value("a2_a")) << "only the calling client is acknowledged";
  h.set("a1_r", false);
  EXPECT_FALSE(h.value("b_r"));
  h.set("b_a", false);
  EXPECT_FALSE(h.value("a1_a"));
  // The other client takes its turn.
  h.set("a2_r", true);
  EXPECT_TRUE(h.value("b_r"));
  h.set("b_a", true);
  EXPECT_TRUE(h.value("a2_a"));
  EXPECT_FALSE(h.value("a1_a"));
}

TEST(Templates, Synch) {
  Harness h(make(ComponentKind::kSynch, {"i1", "i2", "o"}, 2));
  h.set("i1_r", true);
  EXPECT_FALSE(h.value("o_r")) << "waits for all participants";
  h.set("i2_r", true);
  EXPECT_TRUE(h.value("o_r"));
  h.set("o_a", true);
  EXPECT_TRUE(h.value("i1_a"));
  EXPECT_TRUE(h.value("i2_a"));
  h.set("i1_r", false);
  h.set("i2_r", false);
  EXPECT_FALSE(h.value("o_r"));
}

TEST(Templates, Passivator) {
  Harness h(make(ComponentKind::kPassivator, {"a", "b"}));
  h.set("a_r", true);
  EXPECT_FALSE(h.value("a_a"));
  h.set("b_r", true);
  EXPECT_TRUE(h.value("a_a"));
  EXPECT_TRUE(h.value("b_a"));
  h.set("a_r", false);
  EXPECT_TRUE(h.value("b_a")) << "C-element holds until both reqs fall";
  h.set("b_r", false);
  EXPECT_FALSE(h.value("a_a"));
  EXPECT_FALSE(h.value("b_a"));
}

TEST(Templates, TemplatesAreCompact) {
  // A key Table 3 premise: templates are far smaller than the synthesized
  // speed-mode controllers they stand in for.
  Harness seq(make(ComponentKind::kSequence, {"a", "b1", "b2"}, 2));
  EXPECT_LT(seq.area(), 2500);
  Harness call(make(ComponentKind::kCall, {"a1", "a2", "b"}, 2));
  EXPECT_LT(call.area(), 1500);
  Harness loop(make(ComponentKind::kLoop, {"a", "b"}));
  EXPECT_LT(loop.area(), 600);
}

}  // namespace
}  // namespace bb::techmap
