#include "src/netlist/analysis.hpp"

#include <gtest/gtest.h>

#include "src/bm/compile.hpp"
#include "src/ch/parser.hpp"
#include "src/minimalist/synth.hpp"
#include "src/techmap/map.hpp"

namespace bb::netlist {
namespace {

TEST(Analysis, ChainDepth) {
  GateNetlist n("chain");
  const int a = n.add_net("a");
  n.mark_input(a);
  const int b = n.add_gate("INV", CellFn::kInv, {a}, 0.1, 55);
  const int c = n.add_gate("INV", CellFn::kInv, {b}, 0.1, 55);
  n.add_gate("NAND2", CellFn::kNand, {b, c}, 0.2, 73);

  const auto stats = analyze(n);
  EXPECT_EQ(stats.num_gates, 3);
  EXPECT_DOUBLE_EQ(stats.area, 183.0);
  EXPECT_NEAR(stats.critical_path_ns, 0.4, 1e-9);
  EXPECT_EQ(stats.cell_histogram.at("INV"), 2);
  EXPECT_EQ(stats.cell_histogram.at("NAND2"), 1);
}

TEST(Analysis, FeedbackLoopDoesNotDiverge) {
  // A combinational loop (state feedback) must not hang or blow up the
  // critical path: the cycle is cut at the revisit.
  GateNetlist n("loop");
  const int a = n.add_net("a");
  n.mark_input(a);
  const int q = n.add_net("q");
  const int x = n.add_gate("NAND2", CellFn::kNand, {a, q}, 0.1, 73);
  n.add_gate("DEL", CellFn::kBuf, {x}, 0.25, 91, q);

  const auto stats = analyze(n);
  EXPECT_LT(stats.critical_path_ns, 1.0);
  EXPECT_GT(stats.critical_path_ns, 0.0);
}

TEST(Analysis, MappedControllerStats) {
  const auto spec = bm::compile(
      *ch::parse("(rep (enc-early (p-to-p passive P)"
                 " (seq (p-to-p active A1) (p-to-p active A2))))"),
      "seq");
  const auto ctrl = minimalist::synthesize(spec);
  const auto net = techmap::map_controller(
      ctrl, techmap::CellLibrary::ams035(), {}, "p");
  const auto stats = analyze(net);
  EXPECT_GT(stats.num_gates, 10);
  EXPECT_GT(stats.cell_histogram.at("DEL"), 0);
  EXPECT_GT(stats.cell_histogram.at("DOUT"), 0);
  // The combinational response path must sit below the environment
  // response bound times a small number of handshake phases.
  EXPECT_GT(stats.critical_path_ns, 0.0);
  EXPECT_LT(stats.critical_path_ns, 20.0);
}

TEST(Analysis, HistogramStringOrdersByCount) {
  NetlistStats stats;
  stats.cell_histogram = {{"INV", 2}, {"NAND2", 7}, {"C2", 1}};
  EXPECT_EQ(histogram_string(stats), "NAND2 x7, INV x2, C2 x1");
}

}  // namespace
}  // namespace bb::netlist
