// End-to-end flow tests: Balsa source -> handshake netlist -> clustered
// controllers -> gates -> simulated system, for both the unoptimized and
// the optimized back-ends (Fig. 1 / Table 3).
#include "src/flow/benchmarks.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "src/balsa/compile.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/analyze.hpp"
#include "src/flow/system.hpp"
#include "src/flow/testbench.hpp"
#include "src/util/strings.hpp"

namespace bb::flow {
namespace {

TEST(Flow, SynthesizeControlOptimizedClusters) {
  const auto net =
      balsa::compile_source(designs::systolic_counter().source);
  const auto result = synthesize_control(net, FlowOptions::optimized());
  // Loop + 9-way sequencer + 8-way call collapse to a single controller.
  ASSERT_EQ(result.controllers.size(), 1u);
  EXPECT_EQ(result.info[0].states, 19);
  EXPECT_EQ(result.cluster_stats.calls_distributed, 1);
  EXPECT_GT(result.area, 0.0);
}

TEST(Flow, SynthesizeControlBaselineUsesTemplates) {
  const auto net =
      balsa::compile_source(designs::systolic_counter().source);
  const auto result = synthesize_control(net, FlowOptions::unoptimized());
  // All three components have hand templates: no synthesized controllers.
  EXPECT_TRUE(result.controllers.empty());
  EXPECT_EQ(result.info.size(), 3u);
  for (const auto& info : result.info) {
    EXPECT_NE(info.name.find("(template)"), std::string::npos);
  }
}

TEST(Flow, ReportMentionsEveryController) {
  const auto net =
      balsa::compile_source(designs::systolic_counter().source);
  const auto result = synthesize_control(net, FlowOptions::optimized());
  const std::string text = report(result);
  EXPECT_NE(text.find("states"), std::string::npos);
  EXPECT_NE(text.find("total control area"), std::string::npos);
}

struct DesignCase {
  const char* name;
};

class Table3Designs : public ::testing::TestWithParam<DesignCase> {};

TEST_P(Table3Designs, UnoptimizedRunsCorrectly) {
  const auto r = run_benchmark(GetParam().name, FlowOptions::unoptimized());
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_GT(r.time_ns, 0.0);
  EXPECT_GT(r.total_area, 0.0);
}

TEST_P(Table3Designs, OptimizedRunsCorrectly) {
  const auto r = run_benchmark(GetParam().name, FlowOptions::optimized());
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_GT(r.time_ns, 0.0);
}

TEST_P(Table3Designs, OptimizedIsFaster) {
  // The headline of Table 3: the clustered back-end wins on speed for
  // every design.
  const auto row = run_table3_row(GetParam().name);
  ASSERT_TRUE(row.unoptimized.ok) << row.unoptimized.detail;
  ASSERT_TRUE(row.optimized.ok) << row.optimized.detail;
  EXPECT_GT(row.speed_improvement_pct, 0.0)
      << row.title << ": " << row.unoptimized.time_ns << " -> "
      << row.optimized.time_ns;
  // Clustering reduces the controller count.
  EXPECT_LE(row.optimized.controllers, row.unoptimized.components);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, Table3Designs,
                         ::testing::Values(DesignCase{"systolic"},
                                           DesignCase{"wagging"},
                                           DesignCase{"stack"},
                                           DesignCase{"ssem"}),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(Flow, SystolicImprovementIsControlDominated) {
  // Control-dominated designs benefit most (Section 6's observation).
  const auto systolic = run_table3_row("systolic");
  const auto ssem = run_table3_row("ssem");
  ASSERT_TRUE(systolic.optimized.ok);
  ASSERT_TRUE(ssem.optimized.ok);
  EXPECT_GT(systolic.speed_improvement_pct, ssem.speed_improvement_pct);
}

TEST(Flow, StackIsLifoCorrectUnderBothFlows) {
  for (const bool optimized : {false, true}) {
    const auto opts = optimized ? FlowOptions::optimized()
                                : FlowOptions::unoptimized();
    const auto r = run_benchmark("stack", opts);
    EXPECT_TRUE(r.ok) << r.detail;
    EXPECT_NE(r.detail.find("LIFO"), std::string::npos);
  }
}

TEST(Flow, SsemStoresExpectedValues) {
  const auto r = run_benchmark("ssem", FlowOptions::optimized());
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_NE(r.detail.find("stores 0..4"), std::string::npos);
}

TEST(Flow, AnalyzeGateRunsDeepPassesCleanOnSystolic) {
  const auto net =
      balsa::compile_source(designs::systolic_counter().source);
  // The in-flow gate: analyze=true runs the AN/PN/NL semantic passes on
  // every controller and aborts on errors; the paper designs are clean,
  // so synthesis must succeed with the gate enabled.
  FlowOptions options = FlowOptions::optimized();
  options.analyze = true;
  const auto result = synthesize_control(net, options);
  EXPECT_EQ(result.controllers.size(), 1u);
}

TEST(Flow, AnalyzeControlCollectsFindingsWithoutAborting) {
  const auto net =
      balsa::compile_source(designs::systolic_counter().source);
  FlowOptions options = FlowOptions::optimized();
  options.analyze = true;
  const AnalyzeResult analyzed = analyze_control(net, options);
  EXPECT_EQ(analyzed.report.count(lint::Severity::kError), 0u)
      << analyzed.report.to_text();
  EXPECT_EQ(analyzed.report.count(lint::Severity::kWarning), 0u)
      << analyzed.report.to_text();
  EXPECT_TRUE(analyzed.skipped.empty());
}

TEST(Flow, UnknownDesignThrows) {
  EXPECT_THROW(run_benchmark("nonesuch", FlowOptions::optimized()),
               std::invalid_argument);
}

TEST(System, ChannelsAvailableBeforeStart) {
  const auto net =
      balsa::compile_source(designs::systolic_counter().source);
  System system(net, FlowOptions::optimized());
  const auto nets = system.chan("count");
  EXPECT_GE(nets.req, 0);
  EXPECT_GE(nets.ack, 0);
  system.start();
  EXPECT_THROW(system.chan("carry"), std::logic_error);
}

TEST(System, StartTwiceThrows) {
  const auto net =
      balsa::compile_source(designs::systolic_counter().source);
  System system(net, FlowOptions::optimized());
  system.start();
  EXPECT_THROW(system.start(), std::logic_error);
}

// ---- graceful degradation (FlowOptions::strict) ----

hsnet::Netlist stack_netlist() {
  return balsa::compile_source(designs::design("stack").source);
}

FlowOptions budgeted(long long budget, bool strict) {
  FlowOptions options = FlowOptions::optimized();
  options.cache = false;  // a cache hit costs no budgeted work
  options.work_budget = budget;
  options.strict = strict;
  return options;
}

TEST(Degradation, StrictBudgetBlowoutFailsFast) {
  const auto net = stack_netlist();
  try {
    synthesize_control(net, budgeted(1, /*strict=*/true));
    FAIL() << "a 1-op budget must abort the strict flow";
  } catch (const FlowError& e) {
    EXPECT_EQ(e.stage(), FlowStage::kSynthesis);
    EXPECT_EQ(e.diagnostic().rule, "FL002");
  }
}

TEST(Degradation, NonStrictDegradesOnlyOverBudgetControllers) {
  const auto net = stack_netlist();
  const auto healthy = synthesize_control(net, budgeted(-1, /*strict=*/true));
  ASSERT_GE(healthy.info.size(), 2u);

  // Controllers differ widely in synthesis cost, so some budget in this
  // sweep separates them: the expensive ones degrade, the cheap ones
  // survive untouched.  (The sweep keeps the test independent of the
  // exact op counts, which shift as the synthesis passes evolve.)
  ControlResult degraded;
  bool split = false;
  for (const long long budget :
       {1000LL, 5000LL, 20000LL, 100000LL, 500000LL, 2000000LL}) {
    degraded = synthesize_control(net, budgeted(budget, /*strict=*/false));
    if (!degraded.failures.empty() &&
        degraded.failures.size() < healthy.info.size()) {
      split = true;
      break;
    }
  }
  ASSERT_TRUE(split) << "no budget separated the controllers";

  std::set<std::string> failed;
  for (const ControllerFailure& f : degraded.failures) {
    failed.insert(f.controller);
    EXPECT_EQ(f.stage, FlowStage::kSynthesis);
    EXPECT_EQ(f.rule, "FL002");
    EXPECT_FALSE(f.reason.empty());
    EXPECT_FALSE(f.fallback.empty());
    EXPECT_FALSE(f.members.empty());
  }

  // Every surviving controller's report line is byte-identical to the
  // unlimited-budget run's.
  std::set<std::string> degraded_lines;
  for (const std::string& line : util::split(report(degraded), "\n")) {
    degraded_lines.insert(line);
  }
  for (const ControllerInfo& info : healthy.info) {
    if (failed.count(info.name)) continue;
    const std::string line =
        info.name + ": " + std::to_string(info.states) + " states, " +
        std::to_string(info.products) + " products, " +
        std::to_string(info.literals) + " literals, area " +
        std::to_string(info.area);
    EXPECT_TRUE(degraded_lines.count(line)) << "missing: " << line;
  }

  // Each degradation is also surfaced as an FL005 lint warning.
  int fl005 = 0;
  for (const auto& diag : degraded.lint_report.diagnostics()) {
    if (diag.rule == "FL005") ++fl005;
  }
  EXPECT_EQ(fl005, static_cast<int>(degraded.failures.size()));

  // report() names every degraded controller.
  const std::string text = report(degraded);
  for (const std::string& name : failed) {
    EXPECT_NE(text.find("degraded " + name), std::string::npos);
  }
}

TEST(Degradation, NonStrictFullyDegradedRunStillSimulates) {
  // A 1-op budget degrades every synthesized controller to the
  // per-component baseline; the design must still pass its benchmark.
  FlowOptions options = budgeted(1, /*strict=*/false);
  const auto result = synthesize_control(stack_netlist(), options);
  EXPECT_FALSE(result.failures.empty());
  const auto r = run_benchmark("stack", options);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Degradation, EffectiveWorkBudgetResolution) {
  FlowOptions options;
  options.work_budget = 1234;
  EXPECT_EQ(effective_work_budget(options), 1234u);
  options.work_budget = -1;
  EXPECT_EQ(effective_work_budget(options), 0u);

  options.work_budget = 0;
  setenv("BB_WORK_BUDGET", "777", 1);
  EXPECT_EQ(effective_work_budget(options), 777u);
  unsetenv("BB_WORK_BUDGET");
  EXPECT_EQ(effective_work_budget(options), 0u);
}

}  // namespace
}  // namespace bb::flow
