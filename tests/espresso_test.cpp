// Classic espresso-style minimization, and the demonstration of why the
// Burst-Mode synthesizer cannot use it: classic covers may satisfy the
// function while violating the hazard-free required-cube condition.
#include "src/logic/espresso.hpp"

#include <gtest/gtest.h>

#include <random>

#include "src/bm/compile.hpp"
#include "src/ch/parser.hpp"
#include "src/minimalist/funcspec.hpp"
#include "src/minimalist/synth.hpp"

namespace bb::logic {
namespace {

bool same_function(const Cover& a, const Cover& b, std::size_t n) {
  for (std::size_t m = 0; m < (1u << n); ++m) {
    std::vector<bool> bits(n);
    for (std::size_t v = 0; v < n; ++v) bits[v] = (m >> v) & 1u;
    if (a.covers_minterm(bits) != b.covers_minterm(bits)) return false;
  }
  return true;
}

TEST(Espresso, ExpandReachesPrimes) {
  // f = ab + ab' expands to a.
  const Cover on = Cover::parse(2, "11 10");
  const Cover off = on.complement();
  const Cover expanded = expand_against(on, off);
  ASSERT_EQ(expanded.size(), 1u);
  EXPECT_EQ(expanded[0].to_string(), "1-");
}

TEST(Espresso, IrredundantDropsCoveredCube) {
  // The consensus term bc is redundant in ab + a'c + bc.
  const Cover classic = Cover::parse(3, "11- 0-1 -11");
  const Cover result = irredundant(classic, Cover(3));
  EXPECT_EQ(result.size(), 2u);
  EXPECT_TRUE(same_function(classic, result, 3));
}

TEST(Espresso, IrredundantKeepsEssentialCubes) {
  const Cover cover = Cover::parse(2, "1- -1");
  const Cover result = irredundant(cover, Cover(2));
  EXPECT_EQ(result.size(), 2u);
}

TEST(Espresso, DontCaresEnableRemoval) {
  // With the right DC set, a cube becomes removable.
  const Cover cover = Cover::parse(2, "11 00");
  const Cover dc = Cover::parse(2, "0-");
  const Cover result = irredundant(cover, dc);
  EXPECT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].to_string(), "11");
}

TEST(Espresso, MinimizePreservesFunction) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> lit(0, 2);
  for (int trial = 0; trial < 20; ++trial) {
    Cover on(4);
    for (int c = 0; c < 4; ++c) {
      Cube cube(4);
      for (int v = 0; v < 4; ++v) {
        cube.set(v, static_cast<Lit>(lit(rng)));
      }
      on.add(std::move(cube));
    }
    const Cover result = espresso_minimize(on, Cover(4));
    EXPECT_TRUE(same_function(on, result, 4)) << trial;
    EXPECT_LE(result.size(), on.size());
  }
}

TEST(Espresso, ClassicCoverCanViolateHazardFreedom) {
  // The textbook hazard: f = a'b + ac at the transition a: 0->1 with b=c=1.
  // The two-product classic cover is functionally minimal but has no
  // single product containing the required cube "-11" (b=c=1, a free), so
  // a 1->1 transition across it can glitch.  The hazard-free cover must
  // add the consensus term bc.
  const Cover classic = Cover::parse(3, "01- 1-1");
  const Cube required = Cube::parse("-11");
  // Classic cover covers the cube as a union...
  EXPECT_TRUE(classic.covers_cube(required));
  // ...but no single product contains it (the hazard-free condition).
  for (const auto& p : classic.cubes()) {
    EXPECT_FALSE(p.contains(required));
  }
  // And classic irredundancy would *remove* the consensus term that
  // hazard-freedom requires.
  const Cover hazard_free = Cover::parse(3, "01- 1-1 -11");
  const Cover reduced = irredundant(hazard_free, Cover(3));
  EXPECT_EQ(reduced.size(), 2u) << "classic minimization drops bc";
}

TEST(Espresso, HazardFreeSynthesisKeepsRequiredCubesIntact) {
  // Cross-check on a real controller: every required cube of every
  // function is contained in a single product of the hazard-free cover.
  const auto spec = bm::compile(
      *ch::parse("(rep (enc-early (p-to-p passive P)"
                 " (seq (p-to-p active A1) (p-to-p active A2))))"),
      "seq");
  const auto machine = minimalist::extract(spec);
  const auto ctrl = minimalist::synthesize(spec);
  for (std::size_t fi = 0; fi < machine.functions.size(); ++fi) {
    for (const auto& required : machine.functions[fi].on_required) {
      bool contained = false;
      for (const auto& p : ctrl.functions[fi].products.cubes()) {
        if (p.contains(required)) contained = true;
      }
      EXPECT_TRUE(contained) << machine.functions[fi].name << " misses "
                             << required.to_string();
    }
  }
}

}  // namespace
}  // namespace bb::logic
