// The four evaluation designs: sources parse and compile, and the SSEM
// machine-code tooling encodes the benchmark program correctly.
#include "src/designs/designs.hpp"

#include <gtest/gtest.h>

#include "src/balsa/compile.hpp"
#include "src/hsnet/to_ch.hpp"

namespace bb::designs {
namespace {

TEST(Designs, AllFourPresent) {
  const auto all = all_designs();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0]->name, "systolic");
  EXPECT_EQ(all[1]->name, "wagging");
  EXPECT_EQ(all[2]->name, "stack");
  EXPECT_EQ(all[3]->name, "ssem");
}

TEST(Designs, LookupByName) {
  EXPECT_EQ(design("stack").title, "Stack");
  EXPECT_THROW(design("unknown"), std::out_of_range);
}

TEST(Designs, AllSourcesCompile) {
  for (const DesignInfo* d : all_designs()) {
    const auto net = balsa::compile_source(d->source);
    EXPECT_GT(net.components().size(), 0u) << d->name;
    // Every control component must translate to CH.
    EXPECT_NO_THROW(hsnet::control_programs(net)) << d->name;
  }
}

TEST(Designs, SystolicIsControlOnly) {
  const auto net = balsa::compile_source(systolic_counter().source);
  EXPECT_TRUE(net.datapath_ids().empty());
  EXPECT_EQ(net.control_ids().size(), 3u);  // loop, sequencer, call
}

TEST(Designs, SsemIsDatapathDominated) {
  const auto net = balsa::compile_source(ssem().source);
  EXPECT_GT(net.datapath_ids().size(), net.control_ids().size());
}

TEST(Ssem, Encoding) {
  // function bits 15..13, line bits 4..0.
  EXPECT_EQ(ssem_encode(7, 0), 0xE000u);
  EXPECT_EQ(ssem_encode(2, 26), (2u << 13) | 26u);
  EXPECT_EQ(ssem_encode(0, 31), 31u);
  EXPECT_EQ(ssem_encode(3, 40), (3u << 13) | 8u) << "line wraps to 5 bits";
}

TEST(Ssem, BenchmarkProgramLayout) {
  const auto mem = ssem_benchmark_program();
  ASSERT_EQ(mem.size(), 32u);
  // 5 x (LDN, STO) then STP.
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(mem[2 * k], ssem_encode(2, 26 + k)) << k;
    EXPECT_EQ(mem[2 * k + 1], ssem_encode(3, 20 + k)) << k;
  }
  EXPECT_EQ(mem[10], ssem_encode(7, 0));
  // Negated constants.
  EXPECT_EQ(mem[26], 0u);
  EXPECT_EQ(mem[27], 0xFFFFFFFFu);
  EXPECT_EQ(mem[30], 0xFFFFFFFCu);
}

TEST(Ssem, ExpectedResults) {
  const auto expected = ssem_expected_results();
  ASSERT_EQ(expected.size(), 5u);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(expected[k].address, 20 + k);
    EXPECT_EQ(expected[k].value, static_cast<std::uint32_t>(k));
  }
}

}  // namespace
}  // namespace bb::designs
