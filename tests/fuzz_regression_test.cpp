// Replays the minimized-counterexample corpus under tests/regressions/.
//
// Every file is a self-contained bb-fuzz reproducer: "--" headers naming
// the mode and the expectation, then the design body.  "expect: clean"
// files are fixed bugs and must pass every oracle now — a failure means
// a regression of the original fix.  "expect: known-bad" files document
// open bugs and must still fail — a pass means the note is stale and the
// file should be flipped to clean.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/balsa/compile.hpp"
#include "src/balsa/parser.hpp"
#include "src/fuzz/campaign.hpp"
#include "src/fuzz/gen.hpp"

#ifndef BB_REGRESSION_DIR
#error "BB_REGRESSION_DIR must point at the reproducer corpus"
#endif

namespace bb::fuzz {
namespace {

std::vector<Reproducer> load_corpus() {
  std::vector<Reproducer> corpus;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(BB_REGRESSION_DIR)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".balsa" && ext != ".recipe") continue;
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    std::ifstream in(path);
    std::ostringstream content;
    content << in.rdbuf();
    corpus.push_back(parse_reproducer(path.filename().string(),
                                      content.str()));
  }
  return corpus;
}

hsnet::Netlist build_design(const Reproducer& repro) {
  if (repro.mode == "balsa") {
    return balsa::compile(balsa::parse_procedure(repro.design));
  }
  return build_recipe(parse_recipe(repro.design));
}

TEST(FuzzRegressions, CorpusIsNotEmpty) {
  EXPECT_FALSE(load_corpus().empty())
      << "no reproducers under " << BB_REGRESSION_DIR;
}

TEST(FuzzRegressions, EveryReproducerMeetsItsExpectation) {
  for (const Reproducer& repro : load_corpus()) {
    SCOPED_TRACE(repro.path);
    ASSERT_TRUE(repro.expect == "clean" || repro.expect == "known-bad")
        << "unknown expectation '" << repro.expect << "'";

    FuzzOptions options;
    const OracleResult result = check_design(build_design(repro), options, 1);
    if (repro.expect == "clean") {
      EXPECT_EQ(result.verdict, Verdict::kPass)
          << verdict_name(result.verdict) << " (" << result.oracle
          << "): " << result.detail;
    } else {
      EXPECT_EQ(result.verdict, Verdict::kDiscrepancy)
          << "known-bad reproducer no longer fails; flip it to "
             "'expect: clean' and drop the note (" << repro.note << ")";
    }
  }
}

}  // namespace
}  // namespace bb::fuzz
