// The failpoint subsystem: spec grammar, action semantics (error /
// once / every / short / p), hit and trigger accounting, and the
// integration with util::write_file_atomic whose crash windows the
// chaos harness leans on.  Crash actions are exercised end to end by
// bench/bench_chaos.cpp (they _exit the process, so a unit test cannot
// observe them from the inside).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "src/util/failpoint.hpp"
#include "src/util/io.hpp"

namespace fs = std::filesystem;
using bb::util::FailpointHit;
using bb::util::Failpoints;
using bb::util::failpoint;

namespace {

/// Skips the test when the build compiled failpoints out (Release
/// without -DBB_FAILPOINTS_ENABLED=ON) and guarantees a clean table
/// before and after each test regardless of BB_FAILPOINTS in the
/// environment.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Failpoints::compiled_in()) {
      GTEST_SKIP() << "failpoints are compiled out of this build";
    }
    Failpoints::clear();
  }
  void TearDown() override { Failpoints::clear(); }
};

}  // namespace

TEST_F(FailpointTest, SpecGrammarAcceptsEveryDocumentedAction) {
  std::string error;
  EXPECT_TRUE(Failpoints::configure(
      "a=error; b=once ;c=every(3);d=short(16);e=crash;f=crash(2);g=p(0.5)",
      &error))
      << error;
  EXPECT_TRUE(Failpoints::configure("", &error)) << error;  // empty clears
  EXPECT_TRUE(Failpoints::configure("a=off", &error)) << error;
}

TEST_F(FailpointTest, MalformedSpecsAreRejectedAndKeepThePreviousTable) {
  ASSERT_TRUE(Failpoints::configure("keep=error"));
  std::string error;
  for (const char* bad :
       {"=error", "noaction", "a=bogus", "a=every(0)", "a=every(x)",
        "a=short(-1)", "a=crash(0)", "a=p(2)", "a=p(nope)", "a=error=twice"}) {
    error.clear();
    EXPECT_FALSE(Failpoints::configure(bad, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
  // The rejections above must not have clobbered the working table.
  EXPECT_TRUE(failpoint("keep"));
}

TEST_F(FailpointTest, ErrorFiresOnEveryHit) {
  ASSERT_TRUE(Failpoints::set("site", "error"));
  for (int i = 0; i < 3; ++i) {
    const FailpointHit hit = failpoint("site");
    EXPECT_EQ(hit.kind, FailpointHit::Kind::kError);
  }
  EXPECT_EQ(Failpoints::hits("site"), 3u);
  EXPECT_EQ(Failpoints::triggers("site"), 3u);
}

TEST_F(FailpointTest, OnceFiresOnlyOnTheFirstHit) {
  ASSERT_TRUE(Failpoints::set("site", "once"));
  EXPECT_TRUE(failpoint("site"));
  EXPECT_FALSE(failpoint("site"));
  EXPECT_FALSE(failpoint("site"));
  EXPECT_EQ(Failpoints::hits("site"), 3u);
  EXPECT_EQ(Failpoints::triggers("site"), 1u);
}

TEST_F(FailpointTest, EveryNFiresOnMultiplesOfN) {
  ASSERT_TRUE(Failpoints::set("site", "every(2)"));
  EXPECT_FALSE(failpoint("site"));  // hit 1
  EXPECT_TRUE(failpoint("site"));   // hit 2
  EXPECT_FALSE(failpoint("site"));  // hit 3
  EXPECT_TRUE(failpoint("site"));   // hit 4
  EXPECT_EQ(Failpoints::triggers("site"), 2u);
}

TEST_F(FailpointTest, ShortWriteCarriesTheByteCap) {
  ASSERT_TRUE(Failpoints::set("site", "short(16)"));
  const FailpointHit hit = failpoint("site");
  EXPECT_EQ(hit.kind, FailpointHit::Kind::kShortWrite);
  EXPECT_EQ(hit.arg, 16u);
}

TEST_F(FailpointTest, ProbabilityExtremesAreDeterministic) {
  ASSERT_TRUE(Failpoints::set("always", "p(1)"));
  ASSERT_TRUE(Failpoints::set("never", "p(0)"));
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(failpoint("always"));
    EXPECT_FALSE(failpoint("never"));
  }
}

TEST_F(FailpointTest, ClearRestoresTheFastPath) {
  ASSERT_TRUE(Failpoints::set("site", "error"));
  ASSERT_TRUE(failpoint("site"));
  Failpoints::clear();
  EXPECT_FALSE(failpoint("site"));
  EXPECT_EQ(Failpoints::hits("site"), 0u) << "clear drops the accounting";
}

TEST_F(FailpointTest, UnknownSitesNeverFire) {
  ASSERT_TRUE(Failpoints::set("configured", "error"));
  EXPECT_FALSE(failpoint("someone.elses.site"));
  EXPECT_EQ(Failpoints::hits("someone.elses.site"), 0u);
}

// ---- integration with the atomic-write path ----

namespace {

struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag) {
    path = fs::temp_directory_path() /
           (std::string("bb_failpoint_test_") + tag + "_" +
            std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::string s((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  return s;
}

}  // namespace

TEST_F(FailpointTest, InjectedWriteFaultsNeverTearAnAtomicWrite) {
  TempDir dir("wfa");
  const std::string target = (dir.path / "out.txt").string();
  bb::util::write_file_atomic(target, "original");

  // Whichever stage of the atomic write we fail — open, write (full or
  // short), fsync, rename — the caller sees an exception and the
  // previous contents survive untouched.
  for (const char* site :
       {"io.wfa.open", "io.wfa.write", "io.wfa.fsync", "io.wfa.rename"}) {
    Failpoints::clear();
    ASSERT_TRUE(Failpoints::set(site, "once"));
    EXPECT_THROW(bb::util::write_file_atomic(target, "replacement"),
                 std::runtime_error)
        << site;
    EXPECT_EQ(slurp(target), "original") << site;
    EXPECT_EQ(Failpoints::triggers(site), 1u) << site;
    // The fault was one-shot; the retry must succeed and take effect.
    bb::util::write_file_atomic(target, "original");
    EXPECT_EQ(slurp(target), "original") << site;
  }

  Failpoints::clear();
  ASSERT_TRUE(Failpoints::set("io.wfa.write", "short(3)"));
  EXPECT_THROW(bb::util::write_file_atomic(target, "a longer replacement"),
               std::runtime_error);
  Failpoints::clear();
  EXPECT_EQ(slurp(target), "original")
      << "a short write must not leak a truncated file into place";
}
