// Clustering optimizations checked against the worked examples of
// Sections 4.1 (decision-wait + sequencer, Fig. 4) and 4.2 (sequencer +
// call, Fig. 5).
#include "src/opt/cluster.hpp"

#include <gtest/gtest.h>

#include "src/bm/compile.hpp"
#include "src/bm/validate.hpp"
#include "src/ch/parser.hpp"
#include "src/ch/printer.hpp"
#include "src/opt/ch_util.hpp"

namespace bb::opt {
namespace {

ch::Program program(const std::string& name, const std::string& source) {
  return ch::Program(name, ch::parse(source));
}

// Section 4.1's example pair.
const char* kDecisionWait =
    "(rep (enc-early (p-to-p passive a1)"
    "  (mutex (enc-early (p-to-p passive i1) (p-to-p active o1))"
    "         (enc-early (p-to-p passive i2) (p-to-p active o2)))))";
const char* kSequencerOnO2 =
    "(rep (enc-early (p-to-p passive o2)"
    "  (seq (p-to-p active c1) (p-to-p active c2))))";

TEST(ChUtil, UsesOf) {
  const auto e = ch::parse(kDecisionWait);
  const auto uses = uses_of(*e, "o2");
  ASSERT_EQ(uses.size(), 1u);
  EXPECT_EQ(uses[0].activity, ch::Activity::kActive);
  EXPECT_EQ(uses_of(*e, "a1")[0].activity, ch::Activity::kPassive);
  EXPECT_TRUE(uses_of(*e, "zz").empty());
}

TEST(ChUtil, ChannelNames) {
  const auto e = ch::parse(kDecisionWait);
  EXPECT_EQ(channel_names(*e),
            (std::vector<std::string>{"a1", "i1", "i2", "o1", "o2"}));
}

TEST(ChUtil, MatchActivation) {
  const auto e = ch::parse(kSequencerOnO2);
  const auto m = match_activation(*e, "o2");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(ch::to_string(*m->body),
            "(seq (p-to-p active c1) (p-to-p active c2))");
  EXPECT_FALSE(match_activation(*e, "c1").has_value());
}

TEST(ChUtil, MatchActivationWithoutRep) {
  const auto e = ch::parse(
      "(enc-early (p-to-p passive a) (rep (p-to-p active b)))");
  EXPECT_TRUE(match_activation(*e, "a").has_value());
}

TEST(ChUtil, ReplaceChannel) {
  auto e = ch::parse("(seq (p-to-p active x) (p-to-p active y))");
  const auto replacement = ch::parse("(p-to-p active z)");
  EXPECT_EQ(replace_channel(*e, "x", *replacement), 1);
  EXPECT_EQ(ch::to_string(*e),
            "(seq (p-to-p active z) (p-to-p active y))");
  EXPECT_EQ(replace_channel(*e, "absent", *replacement), 0);
}

TEST(T1, Section41WorkedExample) {
  const auto merged = activation_channel_removal(
      program("DW", kDecisionWait), program("SEQ", kSequencerOnO2), "o2");
  ASSERT_TRUE(merged.has_value());
  // The paper's merged program (end of Section 4.1).
  EXPECT_EQ(ch::to_string(*merged->body),
            "(rep (enc-early (p-to-p passive a1) "
            "(mutex "
            "(enc-early (p-to-p passive i1) (p-to-p active o1)) "
            "(enc-early (p-to-p passive i2) "
            "(enc-early void "
            "(seq (p-to-p active c1) (p-to-p active c2)))))))");
}

TEST(T1, Section41MergedMachineMatchesFig4) {
  const auto merged = activation_channel_removal(
      program("DW", kDecisionWait), program("SEQ", kSequencerOnO2), "o2");
  ASSERT_TRUE(merged.has_value());
  const auto spec = bm::compile(*merged->body, "merged");
  EXPECT_TRUE(bm::validate(spec).ok);
  // Fig. 4 right: 11 states, and the i2 branch drives c1 directly.
  EXPECT_EQ(spec.num_states, 11);
  bool found = false;
  for (const auto& arc : spec.arcs) {
    if (arc.in_burst.to_string() == "a1_r+ i2_r+" &&
        arc.out_burst.to_string() == "c1_r+") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "expected arc a1_r+ i2_r+ / c1_r+";
}

TEST(T1, RejectsNonActivationPattern) {
  // The call's passive channels are not activation channels (they sit
  // inside a mutex), so T1 alone cannot remove them.
  const auto call = program(
      "CALL",
      "(rep (mutex (enc-early (p-to-p passive b1) (p-to-p active c))"
      "            (enc-early (p-to-p passive b2) (p-to-p active c))))");
  const auto seq = program(
      "SEQ",
      "(rep (enc-early (p-to-p passive a)"
      "  (seq (p-to-p active b1) (p-to-p active b2))))");
  EXPECT_FALSE(activation_channel_removal(seq, call, "b1").has_value());
}

TEST(T1, RejectsWrongChannel) {
  EXPECT_FALSE(activation_channel_removal(program("DW", kDecisionWait),
                                          program("SEQ", kSequencerOnO2),
                                          "o1")
                   .has_value());
}

TEST(T1, ClusteringMergesChain) {
  // Sequencer activating two sequencers: all three merge into one.
  std::vector<ch::Program> programs;
  programs.push_back(program(
      "TOP", "(rep (enc-early (p-to-p passive a)"
             "  (seq (p-to-p active b1) (p-to-p active b2))))"));
  programs.push_back(program(
      "S1", "(rep (enc-early (p-to-p passive b1)"
            "  (seq (p-to-p active c1) (p-to-p active c2))))"));
  programs.push_back(program(
      "S2", "(rep (enc-early (p-to-p passive b2)"
            "  (seq (p-to-p active c3) (p-to-p active c4))))"));
  ClusterStats stats;
  const auto result = t1_clustering(wrap(std::move(programs)), {}, &stats);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(stats.t1_applied, 2);
  EXPECT_EQ(result[0].members.size(), 3u);
  // The merged controller is a 4-deep sequence over c1..c4.
  const auto spec = bm::compile(*result[0].program.body, "m");
  EXPECT_TRUE(bm::validate(spec).ok);
  EXPECT_EQ(spec.num_states, 10);  // 4 handshakes * 2 + activation entry/exit
}

TEST(T1, StateBudgetRejectsMerge) {
  std::vector<ch::Program> programs;
  programs.push_back(program(
      "TOP", "(rep (enc-early (p-to-p passive a)"
             "  (seq (p-to-p active b1) (p-to-p active b2))))"));
  programs.push_back(program(
      "S1", "(rep (enc-early (p-to-p passive b1)"
            "  (seq (p-to-p active c1) (p-to-p active c2))))"));
  ClusterOptions options;
  options.max_states = 4;  // merged machine needs more
  ClusterStats stats;
  const auto result =
      t1_clustering(wrap(std::move(programs)), options, &stats);
  EXPECT_EQ(result.size(), 2u);
  EXPECT_EQ(stats.t1_applied, 0);
  EXPECT_GT(stats.t1_rejected, 0);
}

TEST(T2, Section42WorkedExample) {
  // Fig. 5: a sequencer whose both branches activate a 2-way call.
  std::vector<ch::Program> programs;
  programs.push_back(program(
      "SEQ", "(rep (enc-early (p-to-p passive a)"
             "  (seq (p-to-p active b1) (p-to-p active b2))))"));
  programs.push_back(program(
      "CALL",
      "(rep (mutex (enc-early (p-to-p passive b1) (p-to-p active c))"
      "            (enc-early (p-to-p passive b2) (p-to-p active c))))"));
  ClusterStats stats;
  const auto result = t2_clustering(wrap(std::move(programs)), {}, &stats);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(stats.calls_distributed, 1);
  EXPECT_EQ(stats.calls_restored, 0);

  // The merged controller (end of Section 4.2): both call fragments
  // inlined, channel c handshaken twice per activation.
  EXPECT_EQ(ch::to_string(*result[0].program.body),
            "(rep (enc-early (p-to-p passive a) "
            "(seq (enc-early void (p-to-p active c)) "
            "(enc-early void (p-to-p active c)))))");

  // Fig. 5 right: 6 states, a_r+/c_r+ entry arc.
  const auto spec = bm::compile(*result[0].program.body, "m");
  EXPECT_TRUE(bm::validate(spec).ok);
  EXPECT_EQ(spec.num_states, 6);
  bool found = false;
  for (const auto& arc : spec.arcs) {
    if (arc.in_burst.to_string() == "a_r+" &&
        arc.out_burst.to_string() == "c_r+") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(T2, RestoresWhenFragmentsSplitAcrossControllers) {
  // Two *independent* loops each call through a shared 2-way call: the
  // fragments land in different controllers, so the call is restored.
  std::vector<ch::Program> programs;
  programs.push_back(program(
      "L1", "(enc-early (p-to-p passive go1) (rep (p-to-p active b1)))"));
  programs.push_back(program(
      "L2", "(enc-early (p-to-p passive go2) (rep (p-to-p active b2)))"));
  programs.push_back(program(
      "CALL",
      "(rep (mutex (enc-early (p-to-p passive b1) (p-to-p active c))"
      "            (enc-early (p-to-p passive b2) (p-to-p active c))))"));
  ClusterStats stats;
  const auto result = t2_clustering(wrap(std::move(programs)), {}, &stats);
  EXPECT_EQ(stats.calls_restored, 1);
  EXPECT_EQ(stats.calls_distributed, 0);
  // The call survives intact.
  ASSERT_EQ(result.size(), 3u);
  bool call_alive = false;
  for (const auto& p : result) {
    if (p.program.name == "CALL") call_alive = true;
  }
  EXPECT_TRUE(call_alive);
}

TEST(T2, OptimizePipeline) {
  std::vector<ch::Program> programs;
  programs.push_back(program(
      "SEQ", "(rep (enc-early (p-to-p passive a)"
             "  (seq (p-to-p active b1) (p-to-p active b2))))"));
  programs.push_back(program(
      "CALL",
      "(rep (mutex (enc-early (p-to-p passive b1) (p-to-p active c))"
      "            (enc-early (p-to-p passive b2) (p-to-p active c))))"));
  const auto result = optimize(std::move(programs));
  EXPECT_EQ(result.size(), 1u);
}

TEST(Synthesizable, AcceptsValidRejectsIllegal) {
  EXPECT_TRUE(bm_synthesizable(
      *ch::parse("(rep (enc-middle (p-to-p passive a) (p-to-p passive b)))")));
  EXPECT_FALSE(bm_synthesizable(
      *ch::parse("(mutex (p-to-p active a) (p-to-p active b))")));
  EXPECT_FALSE(bm_synthesizable(*ch::parse("(p-to-p active b)")));
}

TEST(Synthesizable, StateBudget)
{
  const auto e = ch::parse(
      "(rep (enc-early (p-to-p passive a)"
      "  (seq (p-to-p active b1) (p-to-p active b2))))");
  EXPECT_TRUE(bm_synthesizable(*e, 6));
  EXPECT_FALSE(bm_synthesizable(*e, 5));
}

}  // namespace
}  // namespace bb::opt
