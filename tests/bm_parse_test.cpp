// .bms parsing and round-tripping, plus Burst-Mode state minimization.
#include <gtest/gtest.h>

#include "src/bm/compile.hpp"
#include "src/bm/parse.hpp"
#include "src/bm/validate.hpp"
#include "src/ch/parser.hpp"
#include "src/minimalist/statemin.hpp"
#include "src/minimalist/synth.hpp"

namespace bb::bm {
namespace {

TEST(ParseBms, RoundTripSequencer) {
  const Spec original = compile(
      *ch::parse("(rep (enc-early (p-to-p passive P)"
                 " (seq (p-to-p active A1) (p-to-p active A2))))"),
      "sequencer");
  const Spec parsed = parse_bms(original.to_bms());
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.num_states, original.num_states);
  ASSERT_EQ(parsed.arcs.size(), original.arcs.size());
  for (std::size_t i = 0; i < parsed.arcs.size(); ++i) {
    EXPECT_EQ(parsed.arcs[i].from, original.arcs[i].from);
    EXPECT_EQ(parsed.arcs[i].to, original.arcs[i].to);
    EXPECT_TRUE(parsed.arcs[i].in_burst == original.arcs[i].in_burst);
    EXPECT_TRUE(parsed.arcs[i].out_burst == original.arcs[i].out_burst);
  }
  EXPECT_EQ(parsed.is_input, original.is_input);
  EXPECT_TRUE(validate(parsed).ok);
}

TEST(ParseBms, HandwrittenSpec) {
  const Spec spec = parse_bms(R"(
# a trivial wire
name wire
input a_r 0
output a_a 0
0 1 a_r+ | a_a+
1 0 a_r- | a_a-
)");
  EXPECT_EQ(spec.name, "wire");
  EXPECT_EQ(spec.num_states, 2);
  EXPECT_TRUE(validate(spec).ok);
  // Parsed machines are synthesizable like compiled ones.
  const auto ctrl = minimalist::synthesize(spec);
  EXPECT_TRUE(minimalist::validate_against_spec(ctrl, spec).ok);
}

TEST(ParseBms, EmptyOutputBurst) {
  const Spec spec = parse_bms(
      "name t\n0 1 a_r+ | b_r+\n1 2 a_r- | \n2 0 c_r+ c_r- | b_r-\n");
  ASSERT_EQ(spec.arcs.size(), 3u);
  EXPECT_TRUE(spec.arcs[1].out_burst.empty());
  EXPECT_EQ(spec.arcs[2].in_burst.size(), 2u);
}

TEST(ParseBms, Errors) {
  EXPECT_THROW(parse_bms(""), BmsParseError);
  EXPECT_THROW(parse_bms("name x\n0 1 a_r+\n"), BmsParseError);  // no '|'
  EXPECT_THROW(parse_bms("name x\n0 1 bogus | a_a+\n"), BmsParseError);
  EXPECT_THROW(parse_bms("name x\nz 1 a_r+ | \n"), BmsParseError);
}

// ---- state minimization ----

TEST(StateMin, CollapsesDuplicatedChoiceContinuations) {
  // mutex with two alternatives whose *entire* behaviour is identical
  // (same channel b): the compiler duplicates the continuation per
  // branch; the quotient collapses the copies.
  const Spec spec = compile(
      *ch::parse("(rep (enc-early (p-to-p passive p)"
                 " (mutex (enc-early (p-to-p passive i) (p-to-p active b))"
                 "        (enc-early (p-to-p passive i) (p-to-p active b)))))"),
      "dup");
  const auto result = minimalist::minimize_states(spec);
  EXPECT_GT(result.merged_states, 0);
  EXPECT_TRUE(validate(result.spec).ok);
  EXPECT_LT(result.spec.num_states, spec.num_states);
}

TEST(StateMin, DistinctBehavioursAreNotMerged) {
  const Spec spec = compile(
      *ch::parse("(rep (enc-early (p-to-p passive P)"
                 " (seq (p-to-p active A1) (p-to-p active A2))))"),
      "sequencer");
  const auto result = minimalist::minimize_states(spec);
  EXPECT_EQ(result.merged_states, 0);
  EXPECT_EQ(result.spec.num_states, spec.num_states);
  EXPECT_EQ(result.spec.arcs.size(), spec.arcs.size());
}

TEST(StateMin, QuotientStaysSynthesizable) {
  const Spec spec = compile(
      *ch::parse("(rep (enc-early (p-to-p passive p)"
                 " (mutex (enc-early (p-to-p passive i) (p-to-p active b))"
                 "        (enc-early (p-to-p passive i) (p-to-p active b)))))"),
      "dup");
  const auto result = minimalist::minimize_states(spec);
  const auto ctrl = minimalist::synthesize(result.spec);
  const auto report = minimalist::validate_against_spec(ctrl, result.spec);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(StateMin, CallMachineKeepsItsSevenStates) {
  // The call's two branches use different channels: nothing merges.
  const Spec spec = compile(
      *ch::parse("(rep (mutex"
                 " (enc-early (p-to-p passive A1) (p-to-p active B))"
                 " (enc-early (p-to-p passive A2) (p-to-p active B))))"),
      "call");
  const auto result = minimalist::minimize_states(spec);
  EXPECT_EQ(result.spec.num_states, 7);
}

}  // namespace
}  // namespace bb::bm
