// Trace-theory verification (Section 4.3): conformation equivalence of
// clustered controllers against the composed+hidden originals, swept over
// the legal operator combinations as in the paper's experiment.
#include <gtest/gtest.h>

#include "src/ch/parser.hpp"
#include "src/ch/printer.hpp"
#include "src/opt/cluster.hpp"
#include "src/opt/ch_util.hpp"
#include "src/petri/from_ch.hpp"
#include "src/trace/automaton.hpp"
#include "src/trace/spec_lts.hpp"
#include "src/trace/verify.hpp"

namespace bb::trace {
namespace {

TEST(Dfa, DeterminizeCollapsesTau) {
  petri::Lts lts;
  lts.num_states = 3;
  lts.edges = {{0, 1, ""}, {1, 2, "a+"}};
  const Dfa dfa = determinize(lts);
  EXPECT_EQ(dfa.num_states, 2);
  EXPECT_TRUE(dfa.delta.count({0, "a+"}));
}

TEST(Dfa, LanguageContainment) {
  petri::Lts big;
  big.num_states = 3;
  big.edges = {{0, 1, "a+"}, {0, 2, "b+"}};
  petri::Lts small;
  small.num_states = 2;
  small.edges = {{0, 1, "a+"}};
  const Dfa a = determinize(big);
  const Dfa b = determinize(small);
  EXPECT_TRUE(language_contains(a, b));
  EXPECT_FALSE(language_contains(b, a));
  EXPECT_FALSE(language_equivalent(a, b));
  EXPECT_TRUE(language_equivalent(a, a));
}

TEST(Dfa, CounterexampleIsMinimal) {
  petri::Lts a;
  a.num_states = 2;
  a.edges = {{0, 1, "x+"}};
  petri::Lts b;
  b.num_states = 3;
  b.edges = {{0, 1, "x+"}, {1, 2, "y+"}};
  const auto cex =
      containment_counterexample(determinize(a), determinize(b));
  EXPECT_EQ(cex, (std::vector<std::string>{"x+", "y+"}));
}

// ---- Section 4.3 sweep ----
//
// Activating program:  (rep (OP1 (p-to-p <act1> p) (p-to-p active c)))
// Activated program:   (rep (OP2 (p-to-p passive c) (p-to-p active d)))
// The Activation Channel Removal result must conform to the composition
// of the two originals with channel c hidden.

struct SweepCase {
  const char* op1;
  const char* act1;
  const char* op2;
};

class Section43Sweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(Section43Sweep, ClusteredConformsToComposition) {
  const SweepCase& c = GetParam();
  // Active/active operator pairs need an outer passive activation to form
  // a complete (input-driven) controller.
  const std::string inner = std::string("(") + c.op1 + " (p-to-p " + c.act1 +
                            " p) (p-to-p active c))";
  const std::string x_src =
      std::string(c.act1) == "active"
          ? "(rep (enc-early (p-to-p passive go) " + inner + "))"
          : "(rep " + inner + ")";
  const std::string y_src = std::string("(rep (") + c.op2 +
                            " (p-to-p passive c) (p-to-p active d)))";
  const auto x = ch::parse(x_src);
  const auto y = ch::parse(y_src);

  const auto merged = opt::activation_channel_removal(
      ch::Program("X", x->clone()), ch::Program("Y", y->clone()), "c");
  ASSERT_TRUE(merged.has_value()) << x_src << " / " << y_src;

  const auto result = verify_clustering(*x, *y, "c", *merged->body);
  EXPECT_TRUE(result.equivalent)
      << x_src << " / " << y_src << "\nclustered: "
      << ch::to_string(*merged->body) << "\ncounterexample: "
      << [&] {
           std::string s;
           for (const auto& t : result.counterexample) s += t + " ";
           return s;
         }();
}

// OP2 sweeps the *enclosure* operators only: the activation pattern of
// Section 4.1 requires the channel to enclose the body (a seq-carried
// channel does not, and match_activation rejects it; see the dedicated
// test below).
INSTANTIATE_TEST_SUITE_P(
    AllLegalCombinations, Section43Sweep,
    ::testing::Values(
        // OP1 with passive first argument (Table 1 passive/active column).
        SweepCase{"enc-early", "passive", "enc-early"},
        SweepCase{"enc-early", "passive", "enc-middle"},
        SweepCase{"enc-early", "passive", "enc-late"},
        SweepCase{"enc-middle", "passive", "enc-early"},
        SweepCase{"enc-middle", "passive", "enc-middle"},
        SweepCase{"enc-middle", "passive", "enc-late"},
        SweepCase{"enc-late", "passive", "enc-early"},
        SweepCase{"enc-late", "passive", "enc-middle"},
        SweepCase{"enc-late", "passive", "enc-late"},
        SweepCase{"seq", "passive", "enc-early"},
        SweepCase{"seq", "passive", "enc-middle"},
        SweepCase{"seq", "passive", "enc-late"},
        // OP1 with active first argument (active/active column).
        SweepCase{"enc-early", "active", "enc-early"},
        SweepCase{"enc-early", "active", "enc-middle"},
        SweepCase{"enc-early", "active", "enc-late"},
        SweepCase{"enc-middle", "active", "enc-early"},
        SweepCase{"enc-middle", "active", "enc-middle"},
        SweepCase{"enc-middle", "active", "enc-late"},
        SweepCase{"seq", "active", "enc-early"},
        SweepCase{"seq", "active", "enc-middle"},
        SweepCase{"seq", "active", "enc-late"},
        SweepCase{"seq-ov", "active", "enc-early"},
        SweepCase{"seq-ov", "active", "enc-middle"},
        SweepCase{"seq-ov", "active", "enc-late"}));

TEST(Verify, SeqCarriedChannelIsNotAnActivation) {
  // (seq (p-to-p passive c) X) does not enclose X in c's handshake, so
  // removing c would serialize behaviour the composition leaves
  // concurrent; the pattern matcher must reject it.
  const auto y = ch::parse(
      "(rep (seq (p-to-p passive c) (p-to-p active d)))");
  EXPECT_FALSE(opt::match_activation(*y, "c").has_value());
}

TEST(Verify, Section41ExampleConforms) {
  const auto dw = ch::parse(
      "(rep (enc-early (p-to-p passive a1)"
      "  (mutex (enc-early (p-to-p passive i1) (p-to-p active o1))"
      "         (enc-early (p-to-p passive i2) (p-to-p active o2)))))");
  const auto seq = ch::parse(
      "(rep (enc-early (p-to-p passive o2)"
      "  (seq (p-to-p active c1) (p-to-p active c2))))");
  const auto merged = opt::activation_channel_removal(
      ch::Program("DW", dw->clone()), ch::Program("SEQ", seq->clone()), "o2");
  ASSERT_TRUE(merged.has_value());
  const auto result = verify_clustering(*dw, *seq, "o2", *merged->body);
  EXPECT_TRUE(result.equivalent);
}

TEST(Verify, DetectsBrokenClustering) {
  // Deliberately wrong "optimization": dropping the body entirely.
  const auto x = ch::parse(
      "(rep (enc-early (p-to-p passive p) (p-to-p active c)))");
  const auto y = ch::parse(
      "(rep (enc-early (p-to-p passive c) (p-to-p active d)))");
  const auto bogus = ch::parse("(rep (p-to-p passive p))");
  const auto result = verify_clustering(*x, *y, "c", *bogus);
  EXPECT_FALSE(result.equivalent);
  EXPECT_FALSE(result.counterexample.empty());
}

TEST(Verify, HidePrefix) {
  EXPECT_EQ(hide_prefix("O2"), "o2_");
}

// ---- verify_composition (multi-member conformance, fuzz oracle) ----

TEST(VerifyComposition, ThreeMemberChainConforms) {
  const auto x =
      ch::parse("(rep (enc-early (p-to-p passive go) (p-to-p active c1)))");
  const auto y =
      ch::parse("(rep (enc-early (p-to-p passive c1) (p-to-p active c2)))");
  const auto z =
      ch::parse("(rep (enc-early (p-to-p passive c2) (p-to-p active d)))");
  const auto clustered = ch::parse(
      "(rep (enc-early (p-to-p passive go)"
      "  (enc-early void (enc-early void (p-to-p active d)))))");
  const auto result = verify_composition({x.get(), y.get(), z.get()},
                                         {"c1", "c2"}, *clustered);
  EXPECT_TRUE(result.equivalent);
  EXPECT_TRUE(result.counterexample.empty());
}

TEST(VerifyComposition, SerializedForkIsRefusedWithMinimalPrefix) {
  // The composed fork starts d1 and d2 concurrently.  A clustered
  // controller that serializes them refuses to raise d2_r while d1's
  // handshake runs; the composition rejects at the first event the
  // clustered machine adds beyond the common behaviour, so the
  // counterexample is the three-event prefix, not a full trace.
  const auto x =
      ch::parse("(rep (enc-early (p-to-p passive go) (p-to-p active c)))");
  const auto y = ch::parse(
      "(rep (enc-early (p-to-p passive c)"
      "  (enc-middle (p-to-p active d1) (p-to-p active d2))))");
  const auto clustered = ch::parse(
      "(rep (enc-early (p-to-p passive go)"
      "  (enc-early void (seq (p-to-p active d1) (p-to-p active d2)))))");
  const auto result =
      verify_composition({x.get(), y.get()}, {"c"}, *clustered);
  EXPECT_FALSE(result.equivalent);
  EXPECT_EQ(result.counterexample,
            (std::vector<std::string>{"go_r+", "d1_r+", "d1_a+"}));
}

TEST(VerifyComposition, DoubledHandshakeIsRefusedAfterOneCycle) {
  // A clustered controller that runs d twice per activation is refused
  // exactly at the start of the second handshake: the minimal rejecting
  // prefix is one full d cycle plus the spurious d_r+.
  const auto x =
      ch::parse("(rep (enc-early (p-to-p passive go) (p-to-p active c)))");
  const auto y =
      ch::parse("(rep (enc-early (p-to-p passive c) (p-to-p active d)))");
  const auto clustered = ch::parse(
      "(rep (enc-early (p-to-p passive go)"
      "  (seq (p-to-p active d) (p-to-p active d))))");
  const auto result =
      verify_composition({x.get(), y.get()}, {"c"}, *clustered);
  EXPECT_FALSE(result.equivalent);
  EXPECT_EQ(result.counterexample,
            (std::vector<std::string>{"go_r+", "d_r+", "d_a+", "d_r-", "d_a-",
                                      "d_r+"}));
}

TEST(VerifyComposition, StateLimitThrowsInsteadOfDeciding) {
  const auto x =
      ch::parse("(rep (enc-early (p-to-p passive go) (p-to-p active c)))");
  const auto y =
      ch::parse("(rep (enc-early (p-to-p passive c) (p-to-p active d)))");
  const auto clustered = ch::parse(
      "(rep (enc-early (p-to-p passive go) (enc-early void "
      "(p-to-p active d))))");
  EXPECT_THROW(verify_composition({x.get(), y.get()}, {"c"}, *clustered,
                                  /*state_limit=*/2),
               std::runtime_error);
}

// ---- reject_prefix (the fault campaign's counterexample engine) ----

TEST(RejectPrefix, AcceptedTraceYieldsEmpty) {
  petri::Lts lts;
  lts.num_states = 3;
  lts.edges = {{0, 1, "a+"}, {1, 2, "b+"}};
  const Dfa dfa = determinize(lts);
  EXPECT_TRUE(reject_prefix(dfa, {}).empty());
  EXPECT_TRUE(reject_prefix(dfa, {"a+"}).empty());
  EXPECT_TRUE(reject_prefix(dfa, {"a+", "b+"}).empty());
}

TEST(RejectPrefix, ReturnsShortestRejectedPrefix) {
  petri::Lts lts;
  lts.num_states = 3;
  lts.edges = {{0, 1, "a+"}, {1, 2, "b+"}};
  const Dfa dfa = determinize(lts);
  // The first illegal label closes the counterexample; later labels are
  // irrelevant.
  EXPECT_EQ(reject_prefix(dfa, {"b+", "a+"}),
            (std::vector<std::string>{"b+"}));
  EXPECT_EQ(reject_prefix(dfa, {"a+", "a+", "b+"}),
            (std::vector<std::string>{"a+", "a+"}));
}

// ---- bm_spec_lts: BM machine -> trace language ----

ch::Transition edge(bool is_input, const std::string& signal, bool rising) {
  ch::Transition t;
  t.is_input = is_input;
  t.signal = signal;
  t.rising = rising;
  return t;
}

TEST(BmSpecLts, HandshakeCycleLanguage) {
  // Two-state machine: s0 --a+/b+--> s1 --a-/b---> s0.
  bm::Spec spec;
  spec.name = "cycle";
  spec.num_states = 2;
  spec.initial_state = 0;
  bm::Arc up;
  up.from = 0;
  up.to = 1;
  up.in_burst.transitions = {edge(true, "a", true)};
  up.out_burst.transitions = {edge(false, "b", true)};
  bm::Arc down;
  down.from = 1;
  down.to = 0;
  down.in_burst.transitions = {edge(true, "a", false)};
  down.out_burst.transitions = {edge(false, "b", false)};
  spec.arcs = {up, down};
  spec.is_input = {{"a", true}, {"b", false}};

  const Dfa dfa = determinize(bm_spec_lts(spec));
  EXPECT_TRUE(reject_prefix(dfa, {"a+", "b+", "a-", "b-", "a+"}).empty());
  // The output burst cannot fire before its input burst...
  EXPECT_EQ(reject_prefix(dfa, {"b+"}), (std::vector<std::string>{"b+"}));
  // ...and the machine cannot skip an output burst.
  EXPECT_EQ(reject_prefix(dfa, {"a+", "a-"}),
            (std::vector<std::string>{"a+", "a-"}));
}

TEST(BmSpecLts, InputBurstIsUnordered) {
  // One arc with a two-edge input burst: both arrival orders are legal,
  // and the output fires only after the whole burst.
  bm::Spec spec;
  spec.name = "burst2";
  spec.num_states = 2;
  spec.initial_state = 0;
  bm::Arc arc;
  arc.from = 0;
  arc.to = 1;
  arc.in_burst.transitions = {edge(true, "x", true), edge(true, "y", true)};
  arc.out_burst.transitions = {edge(false, "z", true)};
  spec.arcs = {arc};
  spec.is_input = {{"x", true}, {"y", true}, {"z", false}};

  const Dfa dfa = determinize(bm_spec_lts(spec));
  EXPECT_TRUE(reject_prefix(dfa, {"x+", "y+", "z+"}).empty());
  EXPECT_TRUE(reject_prefix(dfa, {"y+", "x+", "z+"}).empty());
  EXPECT_EQ(reject_prefix(dfa, {"x+", "z+"}),
            (std::vector<std::string>{"x+", "z+"}));
}

}  // namespace
}  // namespace bb::trace
