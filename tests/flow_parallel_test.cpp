// Determinism and memoization contracts of the parallel synthesis flow:
// the parallel per-controller pipeline must produce byte-identical
// results to the serial one, the synthesis cache must be exact (warm
// results identical to cold), and stage timings must be collected.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/balsa/compile.hpp"
#include "src/bm/compile.hpp"
#include "src/ch/parser.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/flow.hpp"
#include "src/minimalist/cache.hpp"
#include "src/netlist/verilog.hpp"
#include "src/util/thread_pool.hpp"

namespace bb::flow {
namespace {

FlowOptions with(int jobs, bool cache,
                 minimalist::SynthCache* instance = nullptr) {
  FlowOptions options = FlowOptions::optimized();
  options.jobs = jobs;
  options.cache = cache;
  options.cache_instance = instance;
  return options;
}

/// Everything the determinism contract covers, in one comparable string.
std::string fingerprint(const ControlResult& result) {
  std::string s = report(result);
  s += netlist::to_verilog(result.gates);
  s += result.lint_report.to_text();
  for (const auto& prefix : result.prefixes) s += prefix + "\n";
  return s;
}

class ParallelFlow : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelFlow, MatchesSerialByteForByte) {
  const auto net = balsa::compile_source(
      designs::design(GetParam()).source);
  const auto serial = synthesize_control(net, with(1, false));
  const auto parallel = synthesize_control(net, with(4, false));
  EXPECT_EQ(report(serial), report(parallel));
  EXPECT_EQ(fingerprint(serial), fingerprint(parallel));
  ASSERT_EQ(serial.info.size(), parallel.info.size());
  for (std::size_t i = 0; i < serial.info.size(); ++i) {
    EXPECT_EQ(serial.info[i].name, parallel.info[i].name);
    EXPECT_EQ(serial.info[i].members, parallel.info[i].members);
  }
}

TEST_P(ParallelFlow, CachedMatchesUncachedAndWarmMatchesCold) {
  const auto net = balsa::compile_source(
      designs::design(GetParam()).source);
  const auto uncached = synthesize_control(net, with(0, false));

  minimalist::SynthCache cache;
  const auto cold = synthesize_control(net, with(0, true, &cache));
  const auto warm = synthesize_control(net, with(0, true, &cache));

  EXPECT_EQ(fingerprint(uncached), fingerprint(cold));
  EXPECT_EQ(fingerprint(cold), fingerprint(warm));

  // Cold run: every controller missed (modulo intra-design duplicates);
  // warm run: every controller hits.
  EXPECT_GT(cold.timings.cache_misses, 0u);
  EXPECT_EQ(warm.timings.cache_misses, 0u);
  EXPECT_EQ(warm.timings.cache_hits,
            static_cast<std::uint64_t>(warm.controllers.size()));
  const auto stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.entries, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, ParallelFlow,
                         ::testing::Values("systolic", "wagging", "stack",
                                           "ssem"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(ParallelFlowSuite, UnoptimizedFlowIsDeterministicToo) {
  for (const auto* design : designs::all_designs()) {
    const auto net = balsa::compile_source(design->source);
    FlowOptions serial_opts = FlowOptions::unoptimized();
    serial_opts.jobs = 1;
    FlowOptions parallel_opts = FlowOptions::unoptimized();
    parallel_opts.jobs = 4;
    const auto serial = synthesize_control(net, serial_opts);
    const auto parallel = synthesize_control(net, parallel_opts);
    EXPECT_EQ(fingerprint(serial), fingerprint(parallel)) << design->name;
  }
}

TEST(ParallelFlowSuite, StageTimingsAreCollected) {
  const auto net = balsa::compile_source(designs::ssem().source);
  const auto result = synthesize_control(net, with(0, false));
  const auto& t = result.timings;
  EXPECT_GT(t.total_ms, 0.0);
  EXPECT_GT(t.controllers_wall_ms, 0.0);
  EXPECT_GT(t.minimalist_ms, 0.0);
  EXPECT_GE(t.jobs, 1);
  EXPECT_EQ(t.controllers.size(), result.controllers.size());
  // Rendering round-trips without throwing and mentions every stage.
  const std::string text = t.to_text();
  for (const char* stage :
       {"to_ch", "cluster", "bm_compile", "minimalist", "techmap", "lint"}) {
    EXPECT_NE(text.find(stage), std::string::npos) << stage;
  }
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"controllers_wall_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
}

TEST(ParallelFlowSuite, StageAggregatesEqualPerControllerSums) {
  // The aggregate per-stage timings are the index-ordered sum of the
  // per-controller values (the merge adds doubles in the same order the
  // test does, so the equality is exact).  This pins the span-derived
  // timings to the same contract the pre-span StageTimings honored.
  const auto net = balsa::compile_source(designs::ssem().source);
  const auto result = synthesize_control(net, with(0, false));
  const auto& t = result.timings;
  double bm_compile = 0.0, minimalist = 0.0, techmap = 0.0, lint = 0.0;
  for (const auto& c : t.controllers) {
    bm_compile += c.bm_compile_ms;
    minimalist += c.minimalist_ms;
    techmap += c.techmap_ms;
    lint += c.lint_ms;
  }
  EXPECT_DOUBLE_EQ(t.bm_compile_ms, bm_compile);
  EXPECT_DOUBLE_EQ(t.minimalist_ms, minimalist);
  EXPECT_DOUBLE_EQ(t.techmap_ms, techmap);
  // The aggregate lint time also covers the handshake- and gate-level
  // passes, which run outside any controller.
  EXPECT_GE(t.lint_ms, lint);
  EXPECT_LE(t.bm_compile_ms + t.minimalist_ms + t.techmap_ms, t.total_ms);
  // to_json stays field-compatible with the pre-observability format.
  const std::string json = t.to_json();
  EXPECT_EQ(json.rfind("{\"schema_version\":", 0), 0u);
  for (const char* field :
       {"\"to_ch_ms\":", "\"cluster_ms\":", "\"bm_compile_ms\":",
        "\"minimalist_ms\":", "\"techmap_ms\":", "\"lint_ms\":",
        "\"controllers_wall_ms\":", "\"total_ms\":", "\"jobs\":",
        "\"cache_hits\":", "\"cache_misses\":", "\"controllers\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(ParallelFlowSuite, ReportOmitsTimingsUnlessAsked) {
  const auto net = balsa::compile_source(designs::wagging_register().source);
  const auto result = synthesize_control(net, with(0, true));
  EXPECT_EQ(report(result).find("stage timings"), std::string::npos);
  EXPECT_NE(report(result, true).find("stage timings"), std::string::npos);
}

TEST(SynthCache, RebindsNamesPositionally) {
  // Two structurally identical controllers with different signal names
  // must share one cache entry, and the rebound hit must match a fresh
  // synthesis of the second spec exactly.
  const char* kShapeA =
      "(rep (enc-early (p-to-p passive pa)"
      " (seq (p-to-p active qa) (p-to-p active ra))))";
  const char* kShapeB =
      "(rep (enc-early (p-to-p passive pb)"
      " (seq (p-to-p active qb) (p-to-p active rb))))";
  const bm::Spec spec_a = bm::compile(*ch::parse(kShapeA), "a");
  const bm::Spec spec_b = bm::compile(*ch::parse(kShapeB), "b");
  ASSERT_EQ(spec_a.to_canonical(), spec_b.to_canonical());

  minimalist::SynthCache cache;
  bool hit = true;
  const auto first = minimalist::synthesize_cached(
      spec_a, minimalist::SynthMode::kSpeed, cache, &hit);
  EXPECT_FALSE(hit);
  const auto second = minimalist::synthesize_cached(
      spec_b, minimalist::SynthMode::kSpeed, cache, &hit);
  EXPECT_TRUE(hit);

  const auto fresh = minimalist::synthesize(spec_b,
                                            minimalist::SynthMode::kSpeed);
  EXPECT_EQ(second.to_sol(), fresh.to_sol());
  EXPECT_EQ(second.name, "b");
  EXPECT_EQ(second.inputs, fresh.inputs);
  EXPECT_EQ(second.outputs, fresh.outputs);
  EXPECT_EQ(second.initial_state_code, fresh.initial_state_code);
  EXPECT_EQ(second.state_codes, fresh.state_codes);
  EXPECT_NE(first.to_sol(), second.to_sol());  // names differ, logic equal
}

TEST(SynthCache, ModeIsPartOfTheKey) {
  const bm::Spec spec = bm::compile(
      *ch::parse("(rep (enc-early (p-to-p passive a) (p-to-p active b)))"),
      "m");
  minimalist::SynthCache cache;
  bool hit = true;
  minimalist::synthesize_cached(spec, minimalist::SynthMode::kSpeed, cache,
                                &hit);
  EXPECT_FALSE(hit);
  minimalist::synthesize_cached(spec, minimalist::SynthMode::kArea, cache,
                                &hit);
  EXPECT_FALSE(hit) << "area-mode synthesis must not reuse a speed entry";
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ThreadPoolFlow, ErrorsSurfaceAtTheLowestFailingIndex) {
  util::ThreadPool pool(4);
  std::atomic<int> attempted{0};
  try {
    util::parallel_for_index(pool, 16, [&](std::size_t i) {
      ++attempted;
      if (i == 3 || i == 11) {
        throw std::runtime_error("fail " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "fail 3");
  }
  EXPECT_EQ(attempted.load(), 16) << "every index must still be attempted";
}

TEST(ThreadPoolFlow, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(8);
  std::vector<std::atomic<int>> counts(1000);
  util::parallel_for_index(pool, counts.size(),
                           [&](std::size_t i) { ++counts[i]; });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << i;
  }
}

TEST(ThreadPoolFlow, SingleWorkerPoolRunsInline) {
  util::ThreadPool pool(1);
  std::set<std::size_t> seen;
  util::parallel_for_index(pool, 10,
                           [&](std::size_t i) { seen.insert(i); });
  EXPECT_EQ(seen.size(), 10u);
}

}  // namespace
}  // namespace bb::flow
