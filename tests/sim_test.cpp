// Event-kernel unit tests plus the key system check: synthesized and
// technology-mapped controllers, simulated at gate level, must replay
// their Burst-Mode specifications hazard-free.
#include <gtest/gtest.h>

#include "src/bm/compile.hpp"
#include "src/ch/parser.hpp"
#include "src/minimalist/synth.hpp"
#include "src/sim/gatesim.hpp"
#include "src/sim/kernel.hpp"
#include "src/techmap/cells.hpp"
#include "src/techmap/map.hpp"

namespace bb::sim {
namespace {

TEST(Kernel, ScheduleAndRun) {
  Simulator sim(2);
  sim.schedule(0, true, 1.0);
  sim.schedule(1, true, 2.0);
  EXPECT_TRUE(sim.run());
  EXPECT_TRUE(sim.value(0));
  EXPECT_TRUE(sim.value(1));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Kernel, InertialCancellation) {
  // A pulse shorter than the pending transition is swallowed.
  Simulator sim(1);
  sim.schedule(0, true, 5.0);
  sim.schedule(0, false, 1.0);  // contradicts, net already 0: both vanish
  EXPECT_TRUE(sim.run());
  EXPECT_FALSE(sim.value(0));
}

TEST(Kernel, CallbacksInterleaveWithEvents) {
  Simulator sim(1);
  std::vector<int> order;
  sim.call_at(1.0, [&] { order.push_back(1); });
  sim.schedule(0, true, 2.0);
  sim.call_at(3.0, [&] { order.push_back(3); });
  EXPECT_TRUE(sim.run());
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_TRUE(sim.value(0));
}

TEST(Kernel, SubscriberNotified) {
  struct Watcher : Process {
    int count = 0;
    void on_change(Simulator&, int) override { ++count; }
  };
  Simulator sim(1);
  Watcher w;
  sim.subscribe(0, &w);
  sim.schedule(0, true, 1.0);
  EXPECT_TRUE(sim.run());
  sim.schedule(0, false, 1.0);
  EXPECT_TRUE(sim.run());
  EXPECT_EQ(w.count, 2);
}

TEST(Kernel, EventBudgetIsPerCall) {
  // Each run() call must start its event count from zero: with the old
  // accumulating counter, a second run inherited the first call's count
  // and could spuriously report budget exhaustion.
  Simulator sim(1);
  for (int round = 0; round < 5; ++round) {
    for (int i = 1; i <= 10; ++i) {
      sim.call_at(static_cast<double>(i), [] {});
    }
    EXPECT_EQ(sim.run_status(1e9, 15), RunStatus::kQuiescent) << round;
    EXPECT_EQ(sim.events_processed(), 10u) << round;
  }
  EXPECT_EQ(sim.total_events(), 50u);
}

TEST(Kernel, RunStatusEventBudget) {
  // A self-sustaining toggler exceeds any finite event budget.
  struct Toggler : Process {
    void start(Simulator& sim) override { sim.schedule(0, true, 1.0); }
    void on_change(Simulator& sim, int net) override {
      sim.schedule(net, !sim.value(net), 1.0);
    }
  };
  Simulator sim(1);
  Toggler t;
  sim.subscribe(0, &t);
  sim.add_process(&t);
  EXPECT_EQ(sim.run_status(1e9, 100), RunStatus::kEventBudget);
  // The budget is per-call: the next call gets a fresh 100 events.
  EXPECT_EQ(sim.run_status(1e9, 100), RunStatus::kEventBudget);
  EXPECT_EQ(sim.events_processed(), 100u);
}

TEST(Kernel, RunStatusTimeoutThenResume) {
  Simulator sim(1);
  sim.schedule(0, true, 10.0);
  EXPECT_EQ(sim.run_status(5.0), RunStatus::kTimeout);
  EXPECT_FALSE(sim.value(0)) << "event beyond the horizon must not fire";
  // Extending the horizon lets the same event complete.
  EXPECT_EQ(sim.run_status(20.0), RunStatus::kQuiescent);
  EXPECT_TRUE(sim.value(0));
}

TEST(Kernel, RunStatusNames) {
  EXPECT_EQ(run_status_name(RunStatus::kQuiescent), "quiescent");
  EXPECT_EQ(run_status_name(RunStatus::kTimeout), "timeout");
  EXPECT_EQ(run_status_name(RunStatus::kEventBudget),
            "event budget exhausted");
}

TEST(GateSim, InverterChain) {
  netlist::GateNetlist net("chain");
  const int a = net.add_net("a");
  net.mark_input(a);
  const int b = net.add_gate("INV", netlist::CellFn::kInv, {a}, 0.1, 55);
  const int c = net.add_gate("INV", netlist::CellFn::kInv, {b}, 0.1, 55);
  net.name_net(c, "c");

  Simulator sim(net.num_nets());
  GateBinding binding(net);
  binding.bind(sim);
  binding.settle_initial(sim);
  EXPECT_TRUE(sim.value(b));
  EXPECT_FALSE(sim.value(c));

  sim.schedule(a, true, 0.0);
  EXPECT_TRUE(sim.run());
  EXPECT_FALSE(sim.value(b));
  EXPECT_TRUE(sim.value(c));
  EXPECT_NEAR(sim.now(), 0.2, 1e-9);
}

TEST(GateSim, CElementHolds) {
  netlist::GateNetlist net("c");
  const int a = net.add_net("a");
  const int b = net.add_net("b");
  net.mark_input(a);
  net.mark_input(b);
  const int q = net.add_gate("C2", netlist::CellFn::kCelem, {a, b}, 0.2, 182);

  Simulator sim(net.num_nets());
  GateBinding binding(net);
  binding.bind(sim);
  binding.settle_initial(sim);

  sim.schedule(a, true, 1.0);
  EXPECT_TRUE(sim.run());
  EXPECT_FALSE(sim.value(q)) << "C-element must hold with inputs split";
  sim.schedule(b, true, 1.0);
  EXPECT_TRUE(sim.run());
  EXPECT_TRUE(sim.value(q));
  sim.schedule(a, false, 1.0);
  EXPECT_TRUE(sim.run());
  EXPECT_TRUE(sim.value(q)) << "C-element holds on first falling input";
}

// ---- Gate-level replay of a Burst-Mode specification ----
//
// Drives the mapped controller through every arc of its spec (depth-first
// over the state graph), applying input bursts edge by edge and waiting
// for quiescence; checks that exactly the expected output bursts appear.

class SpecReplayer {
 public:
  SpecReplayer(const bm::Spec& spec,
               const minimalist::SynthesizedController& ctrl,
               const techmap::MapOptions& options)
      : spec_(spec),
        netlist_(techmap::map_controller(ctrl, techmap::CellLibrary::ams035(),
                                         options, spec.name)),
        binding_(netlist_) {
    sim_ = std::make_unique<Simulator>(netlist_.num_nets());
    binding_.bind(*sim_);
    // Seed the one-hot state code, then settle combinational logic with
    // the seeded feedback nets clamped.
    std::vector<int> clamped;
    for (std::size_t s = 0; s < ctrl.state_bits.size(); ++s) {
      const int net = netlist_.net(spec.name + "/" + ctrl.state_bits[s]);
      if (net >= 0) {
        sim_->set_initial(net, ctrl.initial_state_code[s]);
        clamped.push_back(net);
      }
    }
    binding_.settle_initial(*sim_, clamped);
  }

  /// Replays a closed walk covering every arc; returns an error string or
  /// empty on success.
  std::string replay(int max_steps = 400) {
    int state = spec_.initial_state;
    std::set<std::string> pending_arcs;
    for (const auto& arc : spec_.arcs) {
      pending_arcs.insert(key(arc));
    }
    for (int step = 0; step < max_steps && !pending_arcs.empty(); ++step) {
      // Prefer an untaken arc from the current state.
      const bm::Arc* chosen = nullptr;
      for (const bm::Arc* a : spec_.arcs_from(state)) {
        if (pending_arcs.count(key(*a))) {
          chosen = a;
          break;
        }
      }
      if (chosen == nullptr) {
        const auto arcs = spec_.arcs_from(state);
        if (arcs.empty()) return "stuck in terminal state";
        chosen = arcs[step % arcs.size()];
      }
      const std::string err = take(*chosen);
      if (!err.empty()) return err;
      pending_arcs.erase(key(*chosen));
      state = chosen->to;
    }
    if (!pending_arcs.empty()) return "not all arcs reachable in walk";
    return "";
  }

 private:
  static std::string key(const bm::Arc& a) {
    return std::to_string(a.from) + ":" + a.in_burst.to_string();
  }

  std::string take(const bm::Arc& arc) {
    // Snapshot output values.
    std::map<std::string, bool> before;
    for (const auto& name : spec_.output_names()) {
      before[name] = sim_->value(netlist_.net(name));
    }
    // Apply the input burst edge by edge.
    for (const auto& t : arc.in_burst.transitions) {
      sim_->schedule(netlist_.net(t.signal), t.rising, 0.05);
      if (!sim_->run()) return "no quiescence during input burst";
    }
    if (!sim_->run()) return "no quiescence after input burst";
    // Every expected output edge must have happened; nothing else.
    std::map<std::string, bool> expected = before;
    for (const auto& t : arc.out_burst.transitions) {
      expected[t.signal] = t.rising;
    }
    for (const auto& [name, value] : expected) {
      if (sim_->value(netlist_.net(name)) != value) {
        return "arc " + std::to_string(arc.from) + "->" +
               std::to_string(arc.to) + ": output " + name + " is " +
               (value ? "0" : "1");
      }
    }
    return "";
  }

  const bm::Spec& spec_;
  netlist::GateNetlist netlist_;
  GateBinding binding_;
  std::unique_ptr<Simulator> sim_;
};

void expect_gate_level_replay(const std::string& source,
                              const std::string& name, bool level_separated) {
  const bm::Spec spec = bm::compile(*ch::parse(source), name);
  const auto ctrl = minimalist::synthesize(spec);
  techmap::MapOptions options;
  options.level_separated = level_separated;
  SpecReplayer replayer(spec, ctrl, options);
  const std::string err = replayer.replay();
  EXPECT_TRUE(err.empty()) << name << ": " << err;
}

struct ReplayCase {
  const char* name;
  const char* source;
};

class GateReplay : public ::testing::TestWithParam<ReplayCase> {};

TEST_P(GateReplay, LevelSeparated) {
  expect_gate_level_replay(GetParam().source, GetParam().name, true);
}

TEST_P(GateReplay, WholeCone) {
  expect_gate_level_replay(GetParam().source, GetParam().name, false);
}

INSTANTIATE_TEST_SUITE_P(
    Controllers, GateReplay,
    ::testing::Values(
        ReplayCase{"sequencer",
                   "(rep (enc-early (p-to-p passive P)"
                   " (seq (p-to-p active A1) (p-to-p active A2))))"},
        ReplayCase{"call",
                   "(rep (mutex"
                   " (enc-early (p-to-p passive A1) (p-to-p active B))"
                   " (enc-early (p-to-p passive A2) (p-to-p active B))))"},
        ReplayCase{"passivator",
                   "(rep (enc-middle (p-to-p passive A)"
                   " (p-to-p passive B)))"},
        ReplayCase{"loop",
                   "(enc-early (p-to-p passive a) (rep (p-to-p active b)))"},
        ReplayCase{"concur",
                   "(rep (enc-middle (p-to-p passive a)"
                   " (enc-middle (p-to-p active b1) (p-to-p active b2))))"},
        ReplayCase{"while",
                   "(rep (enc-early (p-to-p passive a)"
                   " (rep (mux-ack g (seq (p-to-p active b))"
                   " (seq (break))))))"},
        ReplayCase{"fig5",
                   "(rep (enc-early (p-to-p passive a)"
                   " (seq (enc-early void (p-to-p active c))"
                   " (enc-early void (p-to-p active c)))))"},
        ReplayCase{"dw_merged",
                   "(rep (enc-early (p-to-p passive a1)"
                   " (mutex (enc-early (p-to-p passive i1)"
                   " (p-to-p active o1))"
                   " (enc-early (p-to-p passive i2)"
                   " (enc-early void (seq (p-to-p active c1)"
                   " (p-to-p active c2)))))))"},
        // Seven-client Call: 22 states, an 8-product state-bit cover —
        // wide enough that the NAND plane needs multi-level collapse.
        // A fuzz-found mapper bug (skewed collapse depths) once turned
        // the y0 feedback loop into a ring oscillator at the handoff
        // back to the idle state; this pins the balanced plane.
        ReplayCase{"call7",
                   "(rep (mutex"
                   " (enc-early (p-to-p passive c1) (p-to-p active k))"
                   " (mutex"
                   " (enc-early (p-to-p passive c2) (p-to-p active k))"
                   " (mutex"
                   " (enc-early (p-to-p passive c3) (p-to-p active k))"
                   " (mutex"
                   " (enc-early (p-to-p passive c4) (p-to-p active k))"
                   " (mutex"
                   " (enc-early (p-to-p passive c5) (p-to-p active k))"
                   " (mutex"
                   " (enc-early (p-to-p passive c6) (p-to-p active k))"
                   " (enc-early (p-to-p passive c7)"
                   " (p-to-p active k)))))))))"}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace bb::sim
