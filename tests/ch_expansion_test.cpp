// Checks the four-phase expansion engine against the rows of Table 2 and
// the worked examples printed in Sections 3.1-3.4 of the paper.
#include "src/ch/expansion.hpp"

#include <gtest/gtest.h>

#include "src/ch/parser.hpp"

namespace bb::ch {
namespace {

std::string expansion_text(const std::string& source) {
  return to_string(expand(*parse(source)));
}

TEST(Expansion, PassivePToP) {
  // Section 3.1: [(i a_r +)] [(o a_a +)] [(i a_r -)] [(o a_a -)]
  EXPECT_EQ(expansion_text("(p-to-p passive A)"),
            "[(i a_r +)] [(o a_a +)] [(i a_r -)] [(o a_a -)]");
}

TEST(Expansion, ActivePToP) {
  EXPECT_EQ(expansion_text("(p-to-p active B)"),
            "[(o b_r +)] [(i b_a +)] [(o b_r -)] [(i b_a -)]");
}

TEST(Expansion, EncEarlyPassiveActiveFromPaper) {
  // Section 3: (enc-early (p-to-p passive A) (p-to-p active B)) =
  // [(i a_r +)(o b_r +)(i b_a +)(o b_r -)(i b_a -)]
  // [(o a_a +)] [(i a_r -)] [(o a_a -)]
  EXPECT_EQ(
      expansion_text("(enc-early (p-to-p passive A) (p-to-p active B))"),
      "[(i a_r +) (o b_r +) (i b_a +) (o b_r -) (i b_a -)] "
      "[(o a_a +)] [(i a_r -)] [(o a_a -)]");
}

TEST(Expansion, MultAckFromPaper) {
  // Section 3.1 example: one request, two synchronized acks.
  EXPECT_EQ(expansion_text("(mult-ack active c 2)"),
            "[(o c_r +)] [(i c_a1 +) (i c_a2 +)] "
            "[(o c_r -)] [(i c_a1 -) (i c_a2 -)]");
}

TEST(Expansion, MultReq) {
  EXPECT_EQ(expansion_text("(mult-req passive d 2)"),
            "[(i d_r1 +) (i d_r2 +)] [(o d_a +)] "
            "[(i d_r1 -) (i d_r2 -)] [(o d_a -)]");
}

// --- Table 2 rows ---

TEST(Table2, EncEarlyActiveActive) {
  // [a1][a2 b1 b2 b3 b4][a3][a4]
  EXPECT_EQ(expansion_text("(enc-early (p-to-p active A) (p-to-p active B))"),
            "[(o a_r +)] "
            "[(i a_a +) (o b_r +) (i b_a +) (o b_r -) (i b_a -)] "
            "[(o a_r -)] [(i a_a -)]");
}

TEST(Table2, EncEarlyPassivePassive) {
  // [a1 b1 b2 b3 b4][a2][a3][a4]
  EXPECT_EQ(
      expansion_text("(enc-early (p-to-p passive A) (p-to-p passive B))"),
      "[(i a_r +) (i b_r +) (o b_a +) (i b_r -) (o b_a -)] "
      "[(o a_a +)] [(i a_r -)] [(o a_a -)]");
}

TEST(Table2, EncLatePassiveActive) {
  // [a1][a2][a3][b1 b2 b3 b4 a4]
  EXPECT_EQ(expansion_text("(enc-late (p-to-p passive A) (p-to-p active B))"),
            "[(i a_r +)] [(o a_a +)] [(i a_r -)] "
            "[(o b_r +) (i b_a +) (o b_r -) (i b_a -) (o a_a -)]");
}

TEST(Table2, EncMiddlePassivePassive) {
  // [a1 b1][b2 a2][a3 b3][b4 a4] - the passivator shape.
  EXPECT_EQ(
      expansion_text("(enc-middle (p-to-p passive A) (p-to-p passive B))"),
      "[(i a_r +) (i b_r +)] [(o b_a +) (o a_a +)] "
      "[(i a_r -) (i b_r -)] [(o b_a -) (o a_a -)]");
}

TEST(Table2, EncMiddleActiveActive) {
  // C-element-like synchronization of two active channels (fork).
  EXPECT_EQ(
      expansion_text("(enc-middle (p-to-p active A) (p-to-p active B))"),
      "[(o a_r +) (o b_r +)] [(i b_a +) (i a_a +)] "
      "[(o a_r -) (o b_r -)] [(i b_a -) (i a_a -)]");
}

TEST(Table2, SeqPassiveActive) {
  // [a1 a2 a3 a4 b1][b2][b3][b4]
  EXPECT_EQ(expansion_text("(seq (p-to-p passive A) (p-to-p active B))"),
            "[(i a_r +) (o a_a +) (i a_r -) (o a_a -) (o b_r +)] "
            "[(i b_a +)] [(o b_r -)] [(i b_a -)]");
}

TEST(Table2, SeqOvActiveActive) {
  // [a1 a2][b1 b2][a3 a4][b3 b4] - the transferrer shape.
  EXPECT_EQ(expansion_text("(seq-ov (p-to-p active A) (p-to-p active B))"),
            "[(o a_r +) (i a_a +)] [(o b_r +) (i b_a +)] "
            "[(o a_r -) (i a_a -)] [(o b_r -) (i b_a -)]");
}

TEST(Table2, MutexPassivePassive) {
  const auto exp =
      expand(*parse("(mutex (p-to-p passive A) (p-to-p passive B))"));
  ASSERT_EQ(exp.events[0].size(), 1u);
  EXPECT_EQ(exp.events[0][0].kind, Item::Kind::kChoice);
  ASSERT_EQ(exp.events[0][0].alternatives.size(), 2u);
  EXPECT_TRUE(exp.events[1].empty());
  EXPECT_TRUE(exp.events[2].empty());
  EXPECT_TRUE(exp.events[3].empty());
  EXPECT_EQ(exp.activity, Activity::kPassive);
}

// --- Table 1 legality ---

struct LegalityCase {
  ExprKind op;
  Activity first;
  Activity second;
  bool legal;
};

class Table1Test : public ::testing::TestWithParam<LegalityCase> {};

TEST_P(Table1Test, MatchesPaper) {
  const LegalityCase& c = GetParam();
  EXPECT_EQ(is_bm_aware(c.op, c.first, c.second), c.legal);
}

constexpr Activity kP = Activity::kPassive;
constexpr Activity kA = Activity::kActive;

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, Table1Test,
    ::testing::Values(
        // enc-early: AA yes, AP no, PA yes, PP yes
        LegalityCase{ExprKind::kEncEarly, kA, kA, true},
        LegalityCase{ExprKind::kEncEarly, kA, kP, false},
        LegalityCase{ExprKind::kEncEarly, kP, kA, true},
        LegalityCase{ExprKind::kEncEarly, kP, kP, true},
        // enc-late: AA no, AP no, PA yes, PP yes
        LegalityCase{ExprKind::kEncLate, kA, kA, false},
        LegalityCase{ExprKind::kEncLate, kA, kP, false},
        LegalityCase{ExprKind::kEncLate, kP, kA, true},
        LegalityCase{ExprKind::kEncLate, kP, kP, true},
        // enc-middle: AA yes, AP no, PA yes, PP yes
        LegalityCase{ExprKind::kEncMiddle, kA, kA, true},
        LegalityCase{ExprKind::kEncMiddle, kA, kP, false},
        LegalityCase{ExprKind::kEncMiddle, kP, kA, true},
        LegalityCase{ExprKind::kEncMiddle, kP, kP, true},
        // seq: AA yes, AP no, PA yes, PP yes
        LegalityCase{ExprKind::kSeq, kA, kA, true},
        LegalityCase{ExprKind::kSeq, kA, kP, false},
        LegalityCase{ExprKind::kSeq, kP, kA, true},
        LegalityCase{ExprKind::kSeq, kP, kP, true},
        // seq-ov: only AA
        LegalityCase{ExprKind::kSeqOv, kA, kA, true},
        LegalityCase{ExprKind::kSeqOv, kA, kP, false},
        LegalityCase{ExprKind::kSeqOv, kP, kA, false},
        LegalityCase{ExprKind::kSeqOv, kP, kP, false},
        // mutex: only PP
        LegalityCase{ExprKind::kMutex, kA, kA, false},
        LegalityCase{ExprKind::kMutex, kA, kP, false},
        LegalityCase{ExprKind::kMutex, kP, kA, false},
        LegalityCase{ExprKind::kMutex, kP, kP, true}));

TEST(Legality, IllegalCombinationThrows) {
  EXPECT_THROW(
      expand(*parse("(enc-early (p-to-p active A) (p-to-p passive B))")),
      BmAwareError);
  EXPECT_THROW(
      expand(*parse("(mutex (p-to-p active A) (p-to-p active B))")),
      BmAwareError);
  EXPECT_THROW(
      expand(*parse("(seq-ov (p-to-p passive A) (p-to-p active B))")),
      BmAwareError);
}

TEST(Legality, AllowIllegalBypasses) {
  ExpandOptions options;
  options.allow_illegal = true;
  EXPECT_NO_THROW(expand(
      *parse("(enc-early (p-to-p active A) (p-to-p passive B))"), options));
}

TEST(Legality, VoidArgumentIsTransparent) {
  // (enc-early void X) arises from Activation Channel Removal and must be
  // accepted for any body activity.
  EXPECT_TRUE(is_bm_aware(ExprKind::kEncEarly, Activity::kNeither, kA));
  EXPECT_TRUE(is_bm_aware(ExprKind::kEncEarly, Activity::kNeither, kP));
  EXPECT_TRUE(is_bm_aware(ExprKind::kSeq, kP, Activity::kNeither));
  // seq-ov demands active/active; a void side can adopt "active".
  EXPECT_TRUE(is_bm_aware(ExprKind::kSeqOv, Activity::kNeither, kA));
  EXPECT_FALSE(is_bm_aware(ExprKind::kSeqOv, Activity::kNeither, kP));
}

// --- rep / break / void ---

TEST(Expansion, VoidIsEmpty) {
  const auto exp = expand(*parse("void"));
  for (const auto& ev : exp.events) EXPECT_TRUE(ev.empty());
  EXPECT_EQ(exp.activity, Activity::kNeither);
}

TEST(Expansion, EncEarlyVoidBodyCollapses) {
  // (enc-early void (p-to-p active C)) == the body alone, in event 1.
  const auto exp = expand(*parse("(enc-early void (p-to-p active C))"));
  EXPECT_EQ(to_string(exp),
            "[(o c_r +) (i c_a +) (o c_r -) (i c_a -)] [] [] []");
  EXPECT_EQ(exp.activity, Activity::kActive);
}

TEST(Expansion, RepWrapsWithLabelAndGoto) {
  const auto exp = expand(*parse("(rep (p-to-p passive A))"));
  const auto& ev = exp.events[0];
  // label, 4 transitions, goto, end-label
  ASSERT_EQ(ev.size(), 7u);
  EXPECT_EQ(ev.front().kind, Item::Kind::kLabel);
  EXPECT_EQ(ev[5].kind, Item::Kind::kGoto);
  EXPECT_EQ(ev[5].label, ev.front().label);
  EXPECT_EQ(ev.back().kind, Item::Kind::kLabel);
  for (std::size_t i = 1; i < 3; ++i) EXPECT_TRUE(exp.events[i].empty());
}

TEST(Expansion, BreakTargetsInnermostLoop) {
  const auto exp = expand(*parse(
      "(rep (seq (p-to-p passive A) (rep (seq (p-to-p passive B) (break)))))"));
  // Find the bgoto and the inner loop's end label; they must match.
  const auto flat = exp.flatten();
  std::string bgoto_label;
  std::vector<std::string> labels;
  for (const Item& item : flat) {
    if (item.kind == Item::Kind::kBGoto) bgoto_label = item.label;
    if (item.kind == Item::Kind::kLabel) labels.push_back(item.label);
  }
  ASSERT_FALSE(bgoto_label.empty());
  EXPECT_NE(std::find(labels.begin(), labels.end(), bgoto_label),
            labels.end());
}

TEST(Expansion, BreakOutsideLoopThrows) {
  EXPECT_THROW(expand(*parse("(seq (p-to-p passive A) (break))")),
               std::logic_error);
}

TEST(Expansion, SignalsOf) {
  const auto exp =
      expand(*parse("(enc-early (p-to-p passive A) (p-to-p active B))"));
  const auto signals = signals_of(exp);
  ASSERT_EQ(signals.size(), 4u);
  // Sorted by name: a_a, a_r, b_a, b_r.
  EXPECT_EQ(signals[0].name, "a_a");
  EXPECT_FALSE(signals[0].is_input);
  EXPECT_EQ(signals[1].name, "a_r");
  EXPECT_TRUE(signals[1].is_input);
  EXPECT_EQ(signals[2].name, "b_a");
  EXPECT_TRUE(signals[2].is_input);
  EXPECT_EQ(signals[3].name, "b_r");
  EXPECT_FALSE(signals[3].is_input);
}

TEST(Expansion, MuxAckBreakOutsideRepThrows) {
  EXPECT_THROW(
      expand(*parse("(mux-ack g (seq (p-to-p active b)) (seq (break)))")),
      std::logic_error);
}

TEST(Expansion, MuxAckShape) {
  // The While-loop decision shape: guard true runs the body, guard false
  // breaks out of the enclosing rep.
  const auto exp = expand(*parse(
      "(rep (mux-ack g (seq (p-to-p active b)) (seq (break))))"));
  const auto flat = exp.flatten();
  // label, g_r+, choice, goto, end-label
  ASSERT_EQ(flat.size(), 5u);
  EXPECT_EQ(flat[0].kind, Item::Kind::kLabel);
  EXPECT_EQ(flat[1].kind, Item::Kind::kTransition);
  EXPECT_EQ(flat[1].transition.signal, "g_r");
  EXPECT_FALSE(flat[1].transition.is_input);
  ASSERT_EQ(flat[2].kind, Item::Kind::kChoice);
  ASSERT_EQ(flat[2].alternatives.size(), 2u);
  // The false branch ends with a bgoto to the rep's end label.
  const auto& false_branch = flat[2].alternatives[1];
  ASSERT_FALSE(false_branch.empty());
  EXPECT_EQ(false_branch.back().kind, Item::Kind::kBGoto);
  EXPECT_EQ(false_branch.back().label, flat[4].label);
}

TEST(Expansion, MuxReqShape) {
  const auto exp = expand(*parse(
      "(mux-req a (enc-early (p-to-p active x)) (enc-early (p-to-p active y)))"));
  ASSERT_EQ(exp.events[0].size(), 1u);
  EXPECT_EQ(exp.events[0][0].kind, Item::Kind::kChoice);
  EXPECT_EQ(exp.events[0][0].alternatives.size(), 2u);
  EXPECT_EQ(exp.activity, Activity::kPassive);
}

}  // namespace
}  // namespace bb::ch
