#include "src/ch/ast.hpp"

#include <gtest/gtest.h>

#include "src/ch/printer.hpp"

namespace bb::ch {
namespace {

TEST(Activity, Channels) {
  EXPECT_EQ(activity_of(*ptop(Activity::kPassive, "a")), Activity::kPassive);
  EXPECT_EQ(activity_of(*ptop(Activity::kActive, "a")), Activity::kActive);
  EXPECT_EQ(activity_of(*void_channel()), Activity::kNeither);
  EXPECT_EQ(activity_of(*mult_ack(Activity::kActive, "c", 2)),
            Activity::kActive);
  EXPECT_EQ(activity_of(*mult_req(Activity::kPassive, "c", 2)),
            Activity::kPassive);
}

TEST(Activity, MuxChannelsAreFixed) {
  std::vector<MuxBranch> b1;
  b1.push_back(MuxBranch{ExprKind::kSeq, ptop(Activity::kActive, "x")});
  EXPECT_EQ(activity_of(*mux_ack("g", std::move(b1))), Activity::kActive);

  std::vector<MuxBranch> b2;
  b2.push_back(MuxBranch{ExprKind::kEncEarly, ptop(Activity::kActive, "x")});
  EXPECT_EQ(activity_of(*mux_req("g", std::move(b2))), Activity::kPassive);
}

TEST(Activity, OperatorsInheritFirstArgument) {
  auto e = enc_early(ptop(Activity::kPassive, "p"),
                     ptop(Activity::kActive, "a"));
  EXPECT_EQ(activity_of(*e), Activity::kPassive);

  auto e2 = seq(ptop(Activity::kActive, "a"), ptop(Activity::kActive, "b"));
  EXPECT_EQ(activity_of(*e2), Activity::kActive);
}

TEST(Activity, VoidFirstArgumentDefersToBody) {
  // This is the shape Activation Channel Removal creates (Section 4.1):
  // (enc-early void body) takes the body's activity.
  auto e = enc_early(void_channel(), seq(ptop(Activity::kActive, "c1"),
                                         ptop(Activity::kActive, "c2")));
  EXPECT_EQ(activity_of(*e), Activity::kActive);
}

TEST(Activity, SeqOvActiveMutexPassive) {
  auto so = seq_ov(ptop(Activity::kActive, "a"), ptop(Activity::kActive, "b"));
  EXPECT_EQ(activity_of(*so), Activity::kActive);
  auto mx = mutex(ptop(Activity::kPassive, "a"),
                  ptop(Activity::kPassive, "b"));
  EXPECT_EQ(activity_of(*mx), Activity::kPassive);
}

TEST(Activity, RepInheritsBody) {
  EXPECT_EQ(activity_of(*rep(ptop(Activity::kPassive, "p"))),
            Activity::kPassive);
  EXPECT_EQ(activity_of(*brk()), Activity::kNeither);
}

TEST(Clone, DeepCopyIsIndependent) {
  auto original = rep(enc_early(ptop(Activity::kPassive, "p"),
                                seq(ptop(Activity::kActive, "a1"),
                                    ptop(Activity::kActive, "a2"))));
  auto copy = original->clone();
  EXPECT_EQ(to_string(*original), to_string(*copy));
  // Mutate the copy; the original must be unaffected.
  copy->args[0]->args[0]->channel = "renamed";
  EXPECT_NE(to_string(*original), to_string(*copy));
}

TEST(Clone, MuxBranches) {
  std::vector<MuxBranch> branches;
  branches.push_back(MuxBranch{ExprKind::kSeq, ptop(Activity::kActive, "b")});
  branches.push_back(MuxBranch{ExprKind::kSeq, brk()});
  auto original = mux_ack("g", std::move(branches));
  auto copy = original->clone();
  ASSERT_EQ(copy->branches.size(), 2u);
  EXPECT_EQ(to_string(*original), to_string(*copy));
}

TEST(Kinds, Predicates) {
  EXPECT_TRUE(is_channel(ExprKind::kPToP));
  EXPECT_TRUE(is_channel(ExprKind::kVoid));
  EXPECT_FALSE(is_channel(ExprKind::kSeq));
  EXPECT_TRUE(is_interleaving(ExprKind::kEncEarly));
  EXPECT_TRUE(is_interleaving(ExprKind::kMutex));
  EXPECT_FALSE(is_interleaving(ExprKind::kRep));
  EXPECT_FALSE(is_interleaving(ExprKind::kPToP));
}

TEST(Kinds, Keywords) {
  EXPECT_EQ(kind_keyword(ExprKind::kEncEarly), "enc-early");
  EXPECT_EQ(kind_keyword(ExprKind::kSeqOv), "seq-ov");
  EXPECT_EQ(kind_keyword(ExprKind::kPToP), "p-to-p");
  EXPECT_EQ(activity_name(Activity::kPassive), "passive");
}

}  // namespace
}  // namespace bb::ch
