// Gate netlists, the Verilog writer, the cell library and the mapper.
#include <gtest/gtest.h>

#include "src/bm/compile.hpp"
#include "src/ch/parser.hpp"
#include "src/minimalist/synth.hpp"
#include "src/netlist/gates.hpp"
#include "src/netlist/verilog.hpp"
#include "src/techmap/cells.hpp"
#include "src/techmap/map.hpp"

namespace bb::netlist {
namespace {

TEST(GateNetlist, NetNaming) {
  GateNetlist n("t");
  const int a = n.add_net("a");
  EXPECT_EQ(n.net("a"), a);
  EXPECT_EQ(n.net("missing"), -1);
  EXPECT_THROW(n.add_net("a"), std::invalid_argument);
  const int b = n.add_net();
  n.name_net(b, "b");
  EXPECT_EQ(n.net("b"), b);
}

TEST(GateNetlist, DriverTable) {
  GateNetlist n("t");
  const int a = n.add_net("a");
  const int q = n.add_gate("INV", CellFn::kInv, {a}, 0.1, 55);
  const auto drivers = n.driver_table();
  EXPECT_EQ(drivers[a], -1);
  EXPECT_EQ(drivers[q], 0);
}

TEST(GateNetlist, DoubleDriverDetected) {
  GateNetlist n("t");
  const int a = n.add_net("a");
  const int q = n.add_net("q");
  n.add_gate("INV", CellFn::kInv, {a}, 0.1, 55, q);
  n.add_gate("BUF", CellFn::kBuf, {a}, 0.1, 73, q);
  EXPECT_THROW(n.driver_table(), std::logic_error);
}

TEST(GateNetlist, MergeConnectsByName) {
  GateNetlist a("a");
  const int x = a.add_net("shared");
  a.add_gate("INV", CellFn::kInv, {x}, 0.1, 55);

  GateNetlist b("b");
  const int y = b.add_net("shared");
  b.mark_input(y);
  b.add_gate("BUF", CellFn::kBuf, {y}, 0.1, 73);

  a.merge(b);
  EXPECT_EQ(a.gates().size(), 2u);
  // Both gates read the same net.
  EXPECT_EQ(a.gates()[0].fanins[0], a.gates()[1].fanins[0]);
  EXPECT_DOUBLE_EQ(a.total_area(), 128.0);
}

TEST(Verilog, StructuralOutput) {
  GateNetlist n("ctrl");
  const int a = n.add_net("a_r");
  n.mark_input(a);
  const int inv = n.add_gate("INV", CellFn::kInv, {a}, 0.1, 55);
  n.add_gate("NAND2", CellFn::kNand, {a, inv}, 0.1, 73,
             n.add_net("a_a"));
  const std::string v = to_verilog(n);
  EXPECT_NE(v.find("module ctrl"), std::string::npos);
  EXPECT_NE(v.find("input a_r;"), std::string::npos);
  EXPECT_NE(v.find("output a_a;"), std::string::npos);
  EXPECT_NE(v.find("not "), std::string::npos);
  EXPECT_NE(v.find("nand "), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Cells, LibraryLookup) {
  const auto& lib = techmap::CellLibrary::ams035();
  EXPECT_EQ(lib.pick(CellFn::kNand, 2).name, "NAND2");
  EXPECT_EQ(lib.pick(CellFn::kNand, 3).name, "NAND3");
  EXPECT_EQ(lib.pick(CellFn::kInv, 1).name, "INV");
  EXPECT_EQ(lib.max_fanin(CellFn::kNand), 4);
  EXPECT_THROW(lib.pick(CellFn::kNand, 9), std::out_of_range);
  EXPECT_EQ(lib.by_name("DEL").fn, CellFn::kBuf);
  EXPECT_THROW(lib.by_name("XYZZY"), std::out_of_range);
}

TEST(Cells, DelaysAndAreasAreMonotone) {
  const auto& lib = techmap::CellLibrary::ams035();
  EXPECT_LT(lib.pick(CellFn::kNand, 2).delay_ns,
            lib.pick(CellFn::kNand, 4).delay_ns);
  EXPECT_LT(lib.pick(CellFn::kNand, 2).area,
            lib.pick(CellFn::kNand, 4).area);
  EXPECT_LT(lib.pick(CellFn::kInv, 1).area, lib.pick(CellFn::kCelem, 2).area);
}

TEST(Map, LevelSeparatedUsesMoreAreaThanWholeCone) {
  // Section 5/6: mapping the two logic levels separately forbids
  // cross-level simplification (e.g. collapsing a single-product
  // function's NAND+INV pair) and costs area.  The loop controller has
  // single-product functions, so the penalty is guaranteed to appear.
  const auto spec = bm::compile(
      *ch::parse("(enc-early (p-to-p passive a) (rep (p-to-p active b)))"),
      "loop");
  const auto ctrl = minimalist::synthesize(spec);
  const auto& lib = techmap::CellLibrary::ams035();
  techmap::MapOptions split;
  split.level_separated = true;
  techmap::MapOptions cone;
  cone.level_separated = false;
  const auto split_net = techmap::map_controller(ctrl, lib, split, "a");
  const auto cone_net = techmap::map_controller(ctrl, lib, cone, "b");
  EXPECT_GT(split_net.total_area(), cone_net.total_area());
}

TEST(Map, LevelSeparationNeverWins) {
  // Whole-cone mapping is never larger: it has strictly more freedom.
  const auto& lib = techmap::CellLibrary::ams035();
  for (const char* src :
       {"(rep (enc-early (p-to-p passive P)"
        " (seq (p-to-p active A1) (p-to-p active A2))))",
        "(rep (mutex (enc-early (p-to-p passive A1) (p-to-p active B))"
        " (enc-early (p-to-p passive A2) (p-to-p active B))))",
        "(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))"}) {
    const auto ctrl = minimalist::synthesize(bm::compile(*ch::parse(src)));
    techmap::MapOptions split;
    split.level_separated = true;
    techmap::MapOptions cone;
    cone.level_separated = false;
    EXPECT_GE(techmap::map_controller(ctrl, lib, split, "a").total_area(),
              techmap::map_controller(ctrl, lib, cone, "b").total_area());
  }
}

TEST(Map, ControllerNetsAreNamed) {
  const auto spec = bm::compile(
      *ch::parse("(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))"),
      "pas");
  const auto ctrl = minimalist::synthesize(spec);
  const auto net = techmap::map_controller(
      ctrl, techmap::CellLibrary::ams035(), {}, "pfx");
  EXPECT_GE(net.net("a_r"), 0);
  EXPECT_GE(net.net("a_a"), 0);
  EXPECT_GE(net.net("pfx/y0"), 0);
  EXPECT_TRUE(net.is_input(net.net("a_r")));
}

TEST(Map, StateBitsRunThroughDelayElements) {
  const auto spec = bm::compile(
      *ch::parse("(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))"),
      "pas");
  const auto ctrl = minimalist::synthesize(spec);
  const auto net = techmap::map_controller(
      ctrl, techmap::CellLibrary::ams035(), {}, "p");
  int dels = 0, douts = 0;
  for (const auto& g : net.gates()) {
    if (g.cell == "DEL") ++dels;
    if (g.cell == "DOUT") ++douts;
  }
  EXPECT_EQ(dels, 2);   // one per state bit
  EXPECT_EQ(douts, 2);  // one per output
}

}  // namespace
}  // namespace bb::netlist
