// CH-to-BMS compilation checked against the Burst-Mode machines of Fig. 3
// (sequencer, call, passivator) and structural/validity properties.
#include "src/bm/compile.hpp"

#include <gtest/gtest.h>

#include "src/bm/validate.hpp"
#include "src/ch/parser.hpp"

namespace bb::bm {
namespace {

Spec compile_source(const std::string& source, const std::string& name = "m") {
  return compile(*ch::parse(source), name);
}

/// Finds the unique arc from `from` whose input burst equals `in`.
const Arc* find_arc(const Spec& spec, int from, const std::string& in) {
  const Arc* found = nullptr;
  for (const Arc& a : spec.arcs) {
    if (a.from == from && a.in_burst.to_string() == in) {
      EXPECT_EQ(found, nullptr) << "duplicate arc";
      found = &a;
    }
  }
  return found;
}

constexpr const char* kSequencer =
    "(rep (enc-early (p-to-p passive P)"
    "  (seq (p-to-p active A1) (p-to-p active A2))))";

constexpr const char* kCall =
    "(rep (mutex"
    "  (enc-early (p-to-p passive A1) (p-to-p active B))"
    "  (enc-early (p-to-p passive A2) (p-to-p active B))))";

constexpr const char* kPassivator =
    "(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))";

TEST(Compile, SequencerMatchesFig3) {
  const Spec spec = compile_source(kSequencer, "sequencer");
  // Fig. 3: 6 states, a single cycle:
  // 0 --p_r+/a1_r+--> 1 --a1_a+/a1_r-> 2 --a1_a-/a2_r+--> 3
  //   --a2_a+/a2_r--> 4 --a2_a-/p_a+--> 5 --p_r-/p_a--> 0
  EXPECT_EQ(spec.num_states, 6);
  EXPECT_EQ(spec.arcs.size(), 6u);

  const Arc* a = find_arc(spec, 0, "p_r+");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->out_burst.to_string(), "a1_r+");

  a = find_arc(spec, a->to, "a1_a+");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->out_burst.to_string(), "a1_r-");

  a = find_arc(spec, a->to, "a1_a-");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->out_burst.to_string(), "a2_r+");

  a = find_arc(spec, a->to, "a2_a+");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->out_burst.to_string(), "a2_r-");

  a = find_arc(spec, a->to, "a2_a-");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->out_burst.to_string(), "p_a+");

  a = find_arc(spec, a->to, "p_r-");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->out_burst.to_string(), "p_a-");
  EXPECT_EQ(a->to, 0) << "cycle must close back to the initial state";
}

TEST(Compile, SequencerIsValid) {
  const auto result = validate(compile_source(kSequencer));
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
}

TEST(Compile, CallMatchesFig3) {
  const Spec spec = compile_source(kCall, "call");
  // Fig. 3: 7 states; initial state has two arcs (input choice).
  EXPECT_EQ(spec.num_states, 7);
  EXPECT_EQ(spec.arcs.size(), 8u);

  const Arc* left = find_arc(spec, 0, "a1_r+");
  const Arc* right = find_arc(spec, 0, "a2_r+");
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);
  EXPECT_EQ(left->out_burst.to_string(), "b_r+");
  EXPECT_EQ(right->out_burst.to_string(), "b_r+");
  EXPECT_NE(left->to, right->to);

  // Follow the left branch: b_a+/b_r-, b_a-/a1_a+, a1_r-/a1_a- back to 0.
  const Arc* a = find_arc(spec, left->to, "b_a+");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->out_burst.to_string(), "b_r-");
  a = find_arc(spec, a->to, "b_a-");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->out_burst.to_string(), "a1_a+");
  a = find_arc(spec, a->to, "a1_r-");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->out_burst.to_string(), "a1_a-");
  EXPECT_EQ(a->to, 0);
}

TEST(Compile, CallIsValid) {
  const auto result = validate(compile_source(kCall));
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
}

TEST(Compile, PassivatorMatchesFig3) {
  const Spec spec = compile_source(kPassivator, "passivator");
  // Fig. 3: 2 states:
  // 0 --a_r+ b_r+ / a_a+ b_a+--> 1 --a_r- b_r- / a_a- b_a---> 0
  EXPECT_EQ(spec.num_states, 2);
  ASSERT_EQ(spec.arcs.size(), 2u);

  const Arc* a = find_arc(spec, 0, "a_r+ b_r+");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->out_burst.to_string(), "a_a+ b_a+");
  a = find_arc(spec, a->to, "a_r- b_r-");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->out_burst.to_string(), "a_a- b_a-");
  EXPECT_EQ(a->to, 0);
}

TEST(Compile, PassivatorIsValid) {
  const auto result = validate(compile_source(kPassivator));
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
}

TEST(Compile, LoopComponentOutputLeadingLoop) {
  // Loop: activate once, then handshake the output forever.  The loop body
  // begins with an *output*, exercising deferred label binding: the back
  // edge must carry b_r+ so every input burst stays non-empty.
  const Spec spec = compile_source(
      "(enc-early (p-to-p passive a) (rep (p-to-p active b)))", "loop");
  const auto result = validate(spec);
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);

  const Arc* entry = find_arc(spec, 0, "a_r+");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->out_burst.to_string(), "b_r+");

  const Arc* first = find_arc(spec, entry->to, "b_a+");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->out_burst.to_string(), "b_r-");
  const Arc* back = find_arc(spec, first->to, "b_a-");
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->out_burst.to_string(), "b_r+")
      << "loop-back arc must re-emit the loop head's output prefix";
  EXPECT_EQ(back->to, entry->to);
}

TEST(Compile, WhileWithBreak) {
  // While loop: guard handshake selects body vs. break.
  const Spec spec = compile_source(
      "(rep (enc-early (p-to-p passive a)"
      "  (rep (mux-ack g (seq (p-to-p active b)) (seq (break))))))",
      "while");
  const auto result = validate(spec);
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);

  // Initial arc: a_r+/g_r+.
  const Arc* entry = find_arc(spec, 0, "a_r+");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->out_burst.to_string(), "g_r+");

  // From the decision state, g_a1+ (true) and g_a2+ (false) both leave.
  const Arc* t = find_arc(spec, entry->to, "g_a1+");
  const Arc* f = find_arc(spec, entry->to, "g_a2+");
  ASSERT_NE(t, nullptr);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(t->out_burst.to_string(), "g_r-");
  EXPECT_EQ(f->out_burst.to_string(), "g_r-");

  // True branch eventually loops back to the decision state with g_r+ on
  // the back edge; false branch reaches the return-to-zero of channel a.
  bool found_backedge = false;
  for (const Arc& a : spec.arcs) {
    if (a.to == entry->to && a.out_burst.to_string().find("g_r+") !=
                                 std::string::npos) {
      found_backedge = true;
    }
  }
  EXPECT_TRUE(found_backedge);
}

TEST(Compile, EmptyInputBurstDetected) {
  // A bare active channel starts with an output: not a valid BM machine.
  const Spec spec = compile_source("(p-to-p active b)");
  const auto result = validate(spec);
  EXPECT_FALSE(result.ok);
}

TEST(Compile, DecisionWaitFromSection41) {
  const Spec spec = compile_source(
      "(rep (enc-early (p-to-p passive a1)"
      "  (mutex (enc-early (p-to-p passive i1) (p-to-p active o1))"
      "         (enc-early (p-to-p passive i2) (p-to-p active o2)))))",
      "dw");
  const auto result = validate(spec);
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
  // Fig. 4 left: 9 states.
  EXPECT_EQ(spec.num_states, 9);
  // The two decision arcs leave state 0 together with the activation:
  // a1_r+ i1_r+ / o1_r+ and a1_r+ i2_r+ / o2_r+.
  EXPECT_NE(find_arc(spec, 0, "a1_r+ i1_r+"), nullptr);
  EXPECT_NE(find_arc(spec, 0, "a1_r+ i2_r+"), nullptr);
}

TEST(Compile, BmsOutputFormat) {
  const Spec spec = compile_source(kPassivator, "passivator");
  const std::string bms = spec.to_bms();
  EXPECT_NE(bms.find("name passivator"), std::string::npos);
  EXPECT_NE(bms.find("input a_r 0"), std::string::npos);
  EXPECT_NE(bms.find("output a_a 0"), std::string::npos);
  EXPECT_NE(bms.find(" | "), std::string::npos);
}

TEST(Compile, DotOutput) {
  const Spec spec = compile_source(kPassivator, "passivator");
  const std::string dot = spec.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("s0 -> s1"), std::string::npos);
}

TEST(Compile, SignalDirectory) {
  const Spec spec = compile_source(kSequencer);
  const auto inputs = spec.input_names();
  const auto outputs = spec.output_names();
  EXPECT_EQ(inputs.size(), 3u);   // p_r, a1_a, a2_a
  EXPECT_EQ(outputs.size(), 3u);  // p_a, a1_r, a2_r
}

// ---- BM008 adjacency analysis (delayed acknowledgments) ----

// The paper's Fig. 4 merged machine (DW + SEQ): the only edges that
// outlive their state are next-transaction requests after falling acks,
// which the analysis deliberately never counts as pending.
constexpr const char* kFig4Merged =
    "(rep (enc-early (p-to-p passive a1)"
    "  (mutex (enc-early (p-to-p passive i1) (p-to-p active o1))"
    "         (enc-early (p-to-p passive i2)"
    "           (enc-early void (seq (p-to-p active c1)"
    "                                (p-to-p active c2)))))))";

TEST(Adjacency, Fig4MergedMachineIsClean) {
  const Spec spec = compile_source(kFig4Merged, "merged");
  EXPECT_TRUE(adjacency_violations(spec).empty());
}

TEST(Adjacency, SequencerAndTemplatesAreClean) {
  EXPECT_TRUE(adjacency_violations(compile_source(kSequencer)).empty());
}

// A Concur-shaped cluster: a_r+ is emitted at 2->3 but a_a+ is consumed
// only leaving state 4 — one state of earliness.  That is tolerated by
// the grace window, but the state must report a_a as an early input so
// synthesis can treat it as a don't-care there.
constexpr const char* kOneStateEarly =
    "(rep (enc-early (p-to-p passive activate)"
    "  (seq (enc-early void (seq (enc-early void (p-to-p active d))"
    "         (enc-middle void (enc-middle (p-to-p active a)"
    "           (enc-early void (p-to-p active d))))))"
    "       (enc-early void (p-to-p active d)))))";

TEST(Adjacency, OneStateOfEarlinessIsToleratedButReported) {
  const Spec spec = compile_source(kOneStateEarly, "cluster");
  EXPECT_TRUE(adjacency_violations(spec).empty());
  const auto early = early_inputs(spec);
  ASSERT_EQ(early.size(), static_cast<std::size_t>(spec.num_states));
  EXPECT_TRUE(early[3].count("a_a")) << "a_a+ can arrive early in state 3";
}

// A pipeline where c2_a+ can linger across states 1 AND 2 before its
// consuming burst leaves state 3 — outside the one-state grace window,
// so both states are flagged.
constexpr const char* kTwoStateLinger =
    "(rep (enc-early (p-to-p passive go)"
    "  (enc-middle (p-to-p active c2)"
    "    (seq (p-to-p active c1) (p-to-p active c0)))))";

TEST(Adjacency, TwoStateLingerIsAViolation) {
  const Spec spec = compile_source(kTwoStateLinger, "pipe");
  // c2_a+ is stuck at both state 1 and state 2; the violation is
  // reported once, at the state that starts the two-state linger.
  const auto violations = adjacency_violations(spec);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("c2_a+"), std::string::npos) << violations[0];
  EXPECT_NE(violations[0].find("state 1"), std::string::npos) << violations[0];
}

}  // namespace
}  // namespace bb::bm
