// Unit tests for the testbench building blocks (drivers, servers, the
// SSEM memory) against small compiled systems.
#include "src/flow/testbench.hpp"

#include <gtest/gtest.h>

#include "src/balsa/compile.hpp"
#include "src/designs/designs.hpp"

namespace bb::flow {
namespace {

hsnet::Netlist tick_design() {
  return balsa::compile_source(
      "procedure tick (sync t) is begin loop sync t end end");
}

TEST(Testbench, ActivateDriverHoldsRequest) {
  auto net = tick_design();
  System system(net, FlowOptions::optimized());
  ActivateDriver activate(system, "activate");
  SyncServer t(system, "t");
  t.enabled = [&] { return t.completed() < 3; };
  auto& sim = system.start();
  EXPECT_TRUE(sim.run());
  // The loop never acknowledges the activation.
  EXPECT_FALSE(activate.done());
  EXPECT_EQ(t.completed(), 3);
}

TEST(Testbench, SyncServerCycleCallback) {
  auto net = tick_design();
  System system(net, FlowOptions::unoptimized());
  ActivateDriver activate(system, "activate");
  SyncServer t(system, "t");
  std::vector<double> times;
  t.on_cycle = [&](int, double time) { times.push_back(time); };
  t.enabled = [&] { return t.completed() < 4; };
  system.start().run();
  ASSERT_EQ(times.size(), 4u);
  // Steady-state cycle times are positive and monotone.
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
  }
}

TEST(Testbench, PullPushServersMoveData) {
  auto net = balsa::compile_source(R"(
    procedure copy (input i : 8; output o : 8) is
      variable v : 8
    begin
      loop i -> v ; o <- v + 1 end
    end)");
  System system(net, FlowOptions::optimized());
  ActivateDriver activate(system, "activate");
  std::uint64_t next = 10;
  PullServer in(system, "i", [&] { return next++; });
  PushServer out(system, "o");
  in.enabled = [&] { return out.consumed() < 3; };
  system.start().run();
  EXPECT_EQ(out.values(),
            (std::vector<std::uint64_t>{11, 12, 13}));
  EXPECT_GE(in.served(), 3);
}

TEST(Testbench, SsemMemoryReadWrite) {
  auto net = balsa::compile_source(designs::ssem().source);
  System system(net, FlowOptions::optimized());
  ActivateDriver activate(system, "activate");
  // Program: LDN 26 (acc = -mem[26] = 7), STO 20, STP.
  std::vector<std::uint32_t> image(32, 0);
  image[0] = designs::ssem_encode(2, 26);
  image[1] = designs::ssem_encode(3, 20);
  image[2] = designs::ssem_encode(7, 0);
  image[26] = static_cast<std::uint32_t>(-7);
  SsemMemory memory(system, image);
  system.start().run();
  EXPECT_TRUE(activate.done());
  EXPECT_EQ(memory.contents()[20], 7u);
  EXPECT_EQ(memory.writes(), 1);
  // 3 instruction fetches + 1 operand fetch.
  EXPECT_EQ(memory.reads(), 4);
}

TEST(Testbench, SsemCmpSkipsOnNegative) {
  auto net = balsa::compile_source(designs::ssem().source);
  System system(net, FlowOptions::optimized());
  ActivateDriver activate(system, "activate");
  // acc = -1 (negative) -> CMP must skip the first STO.
  std::vector<std::uint32_t> image(32, 0);
  image[0] = designs::ssem_encode(2, 26);  // LDN: acc = -mem[26] = -1
  image[1] = designs::ssem_encode(6, 0);   // CMP: acc < 0 -> skip
  image[2] = designs::ssem_encode(3, 20);  // skipped STO
  image[3] = designs::ssem_encode(3, 21);  // executed STO
  image[4] = designs::ssem_encode(7, 0);   // STP
  image[26] = 1;
  SsemMemory memory(system, image);
  system.start().run();
  EXPECT_TRUE(activate.done());
  EXPECT_EQ(memory.contents()[20], 0u) << "skipped store must not happen";
  EXPECT_EQ(memory.contents()[21], 0xFFFFFFFFu);
}

TEST(Testbench, SsemJmpTransfersControl) {
  auto net = balsa::compile_source(designs::ssem().source);
  System system(net, FlowOptions::optimized());
  ActivateDriver activate(system, "activate");
  std::vector<std::uint32_t> image(32, 0);
  image[0] = designs::ssem_encode(0, 28);  // JMP: pc = mem[28] = 5
  image[1] = designs::ssem_encode(3, 20);  // never executed
  image[5] = designs::ssem_encode(7, 0);   // STP
  image[28] = 5;
  SsemMemory memory(system, image);
  system.start().run();
  EXPECT_TRUE(activate.done());
  EXPECT_EQ(memory.contents()[20], 0u);
  EXPECT_EQ(memory.writes(), 0);
}

}  // namespace
}  // namespace bb::flow
