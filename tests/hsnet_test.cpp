#include <gtest/gtest.h>

#include "src/bm/compile.hpp"
#include "src/bm/validate.hpp"
#include "src/ch/printer.hpp"
#include "src/hsnet/netlist.hpp"
#include "src/hsnet/to_ch.hpp"

namespace bb::hsnet {
namespace {

Component make(ComponentKind kind, std::vector<std::string> ports,
               int ways = 0) {
  Component c;
  c.kind = kind;
  c.ports = std::move(ports);
  c.ways = ways;
  return c;
}

TEST(Component, ControlPartition) {
  EXPECT_TRUE(is_control(ComponentKind::kSequence));
  EXPECT_TRUE(is_control(ComponentKind::kCall));
  EXPECT_TRUE(is_control(ComponentKind::kWhile));
  EXPECT_FALSE(is_control(ComponentKind::kVariable));
  EXPECT_FALSE(is_control(ComponentKind::kFetch));
  EXPECT_FALSE(is_control(ComponentKind::kMemory));
}

TEST(ToCh, SequencerMatchesSection34) {
  const auto p = to_ch(make(ComponentKind::kSequence, {"P", "A1", "A2"}));
  EXPECT_EQ(ch::to_string(*p.body),
            "(rep (enc-early (p-to-p passive P) "
            "(seq (p-to-p active A1) (p-to-p active A2))))");
}

TEST(ToCh, SequencerThreeWayNestsRight) {
  const auto p =
      to_ch(make(ComponentKind::kSequence, {"P", "A1", "A2", "A3"}));
  EXPECT_EQ(ch::to_string(*p.body),
            "(rep (enc-early (p-to-p passive P) "
            "(seq (p-to-p active A1) "
            "(seq (p-to-p active A2) (p-to-p active A3)))))");
}

TEST(ToCh, CallMatchesSection34) {
  const auto p = to_ch(make(ComponentKind::kCall, {"A1", "A2", "B"}));
  EXPECT_EQ(ch::to_string(*p.body),
            "(rep (mutex "
            "(enc-early (p-to-p passive A1) (p-to-p active B)) "
            "(enc-early (p-to-p passive A2) (p-to-p active B))))");
}

TEST(ToCh, PassivatorMatchesSection34) {
  const auto p = to_ch(make(ComponentKind::kPassivator, {"A", "B"}));
  EXPECT_EQ(ch::to_string(*p.body),
            "(rep (enc-middle (p-to-p passive A) (p-to-p passive B)))");
}

TEST(ToCh, DecisionWaitMatchesSection41) {
  const auto p = to_ch(
      make(ComponentKind::kDecisionWait, {"a1", "i1", "i2", "o1", "o2"}, 2));
  EXPECT_EQ(ch::to_string(*p.body),
            "(rep (enc-early (p-to-p passive a1) "
            "(mutex "
            "(enc-early (p-to-p passive i1) (p-to-p active o1)) "
            "(enc-early (p-to-p passive i2) (p-to-p active o2)))))");
}

TEST(ToCh, AllControlKindsProduceValidBmMachines) {
  const std::vector<Component> components = {
      make(ComponentKind::kLoop, {"a", "b"}),
      make(ComponentKind::kSequence, {"a", "b1", "b2"}),
      make(ComponentKind::kSequence, {"a", "b1", "b2", "b3", "b4"}),
      make(ComponentKind::kConcur, {"a", "b1", "b2"}),
      make(ComponentKind::kConcur, {"a", "b1", "b2", "b3"}),
      make(ComponentKind::kCall, {"a1", "a2", "b"}),
      make(ComponentKind::kCall, {"a1", "a2", "a3", "b"}),
      make(ComponentKind::kDecisionWait, {"a", "i1", "i2", "o1", "o2"}, 2),
      make(ComponentKind::kWhile, {"a", "g", "b"}),
      make(ComponentKind::kCase, {"a", "s", "o1", "o2", "o3"}, 3),
      make(ComponentKind::kSynch, {"i1", "i2", "o"}),
      make(ComponentKind::kPassivator, {"a", "b"}),
  };
  for (const Component& c : components) {
    const auto program = to_ch(c);
    const auto spec = bm::compile(*program.body, program.name);
    const auto check = bm::validate(spec);
    EXPECT_TRUE(check.ok) << program.name << ": "
                          << (check.errors.empty() ? "" : check.errors[0]);
    EXPECT_GT(spec.num_states, 0) << program.name;
  }
}

TEST(ToCh, DatapathComponentThrows) {
  EXPECT_THROW(to_ch(make(ComponentKind::kVariable, {"w", "r"})),
               std::invalid_argument);
}

TEST(Netlist, ChannelBookkeeping) {
  Netlist n("t");
  n.add(make(ComponentKind::kSequence, {"a", "b1", "b2"}));
  n.add(make(ComponentKind::kCall, {"b1", "b2", "c"}));
  const ChannelInfo* b1 = n.channel("b1");
  ASSERT_NE(b1, nullptr);
  EXPECT_EQ(b1->endpoints.size(), 2u);
  const ChannelInfo* c = n.channel("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->endpoints.size(), 1u);
}

TEST(Netlist, InternalControlChannels) {
  Netlist n("t");
  n.declare_channel("a", 0, /*external=*/true);
  n.add(make(ComponentKind::kSequence, {"a", "b1", "b2"}));
  n.add(make(ComponentKind::kCall, {"b1", "b2", "c"}));
  n.add(make(ComponentKind::kFetch, {"c", "din", "dout"}));
  const auto internal = n.internal_control_channels();
  // b1 and b2 connect two control components; a is external; c touches a
  // datapath component.
  EXPECT_EQ(internal, (std::vector<std::string>{"b1", "b2"}));
}

TEST(Netlist, ControlDatapathSplit) {
  Netlist n("t");
  n.add(make(ComponentKind::kSequence, {"a", "b1", "b2"}));
  n.add(make(ComponentKind::kFetch, {"b1", "x", "y"}));
  n.add(make(ComponentKind::kVariable, {"y", "z"}));
  EXPECT_EQ(n.control_ids().size(), 1u);
  EXPECT_EQ(n.datapath_ids().size(), 2u);
}

TEST(Netlist, ControlPrograms) {
  Netlist n("t");
  n.add(make(ComponentKind::kSequence, {"a", "b1", "b2"}));
  n.add(make(ComponentKind::kFetch, {"b1", "x", "y"}));
  n.add(make(ComponentKind::kLoop, {"b2", "c"}));
  const auto programs = control_programs(n);
  ASSERT_EQ(programs.size(), 2u);
  EXPECT_NE(programs[0].name.find("$BrzSequence"), std::string::npos);
  EXPECT_NE(programs[1].name.find("$BrzLoop"), std::string::npos);
}

TEST(Netlist, ToStringMentionsEveryComponent) {
  Netlist n("demo");
  n.add(make(ComponentKind::kSequence, {"a", "b1", "b2"}));
  n.add(make(ComponentKind::kConstant, {"k"}));
  const std::string dump = n.to_string();
  EXPECT_NE(dump.find("$BrzSequence#0"), std::string::npos);
  EXPECT_NE(dump.find("$BrzConstant#1"), std::string::npos);
}

}  // namespace
}  // namespace bb::hsnet
