#include "src/util/strings.hpp"

#include <gtest/gtest.h>

namespace bb::util {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a b  c", " ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitMultipleDelims) {
  const auto parts = split("a,b;c", ",;");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitEmpty) { EXPECT_TRUE(split("", " ").empty()); }

TEST(Strings, SplitOnlyDelims) { EXPECT_TRUE(split("   ", " ").empty()); }

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("enc-early", "enc"));
  EXPECT_FALSE(starts_with("enc", "enc-early"));
  EXPECT_TRUE(ends_with("a_r", "_r"));
  EXPECT_FALSE(ends_with("r", "_r"));
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("A1_Req"), "a1_req"); }

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("mux_ack_x", "_", "-"), "mux-ack-x");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("none", "x", "y"), "none");
}

}  // namespace
}  // namespace bb::util
