#include "src/util/strings.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/util/io.hpp"
#include "src/util/prng.hpp"
#include "src/util/workbudget.hpp"

namespace bb::util {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a b  c", " ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitMultipleDelims) {
  const auto parts = split("a,b;c", ",;");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitEmpty) { EXPECT_TRUE(split("", " ").empty()); }

TEST(Strings, SplitOnlyDelims) { EXPECT_TRUE(split("   ", " ").empty()); }

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("enc-early", "enc"));
  EXPECT_FALSE(starts_with("enc", "enc-early"));
  EXPECT_TRUE(ends_with("a_r", "_r"));
  EXPECT_FALSE(ends_with("r", "_r"));
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("A1_Req"), "a1_req"); }

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("mux_ack_x", "_", "-"), "mux-ack-x");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("none", "x", "y"), "none");
}

TEST(WorkBudget, DefaultIsUnlimited) {
  WorkBudget budget;
  EXPECT_TRUE(budget.unlimited());
  EXPECT_FALSE(budget.exhausted());
  for (int i = 0; i < 1000; ++i) budget.charge(1000);
  EXPECT_EQ(budget.used(), 1000000u);
  EXPECT_FALSE(budget.exhausted());
}

TEST(WorkBudget, ThrowsPastLimit) {
  WorkBudget budget(10);
  budget.charge(10);
  EXPECT_EQ(budget.used(), 10u);
  EXPECT_TRUE(budget.exhausted());
  try {
    budget.charge(5);
    FAIL() << "charge past the limit must throw";
  } catch (const WorkBudgetExceeded& e) {
    EXPECT_EQ(e.limit(), 10u);
    EXPECT_EQ(e.used(), 15u);
  }
}

TEST(SplitMix64, DeterministicAndSeedSensitive) {
  SplitMix64 a(42), b(42), c(43);
  bool differs = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(SplitMix64, BoundedDraws) {
  SplitMix64 prng(7);
  for (int i = 0; i < 256; ++i) {
    EXPECT_LT(prng.below(13), 13u);
    const double u = prng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(AtomicWrite, WritesAndOverwrites) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "bb_util_test_atomic";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "artifact.json").string();

  write_file_atomic(path, "{\"v\":1}\n");
  write_file_atomic(path, "{\"v\":2}\n");

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "{\"v\":2}\n");

  // No temporary files left behind next to the target.
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

TEST(AtomicWrite, ThrowsOnUnwritablePath) {
  EXPECT_THROW(write_file_atomic("/nonexistent-dir/sub/x.json", "data"),
               std::runtime_error);
}

}  // namespace
}  // namespace bb::util
