#include "src/util/strings.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/util/io.hpp"
#include "src/util/json_parse.hpp"
#include "src/util/prng.hpp"
#include "src/util/workbudget.hpp"

namespace bb::util {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a b  c", " ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitMultipleDelims) {
  const auto parts = split("a,b;c", ",;");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitEmpty) { EXPECT_TRUE(split("", " ").empty()); }

TEST(Strings, SplitOnlyDelims) { EXPECT_TRUE(split("   ", " ").empty()); }

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("enc-early", "enc"));
  EXPECT_FALSE(starts_with("enc", "enc-early"));
  EXPECT_TRUE(ends_with("a_r", "_r"));
  EXPECT_FALSE(ends_with("r", "_r"));
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("A1_Req"), "a1_req"); }

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("mux_ack_x", "_", "-"), "mux-ack-x");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("none", "x", "y"), "none");
}

TEST(WorkBudget, DefaultIsUnlimited) {
  WorkBudget budget;
  EXPECT_TRUE(budget.unlimited());
  EXPECT_FALSE(budget.exhausted());
  for (int i = 0; i < 1000; ++i) budget.charge(1000);
  EXPECT_EQ(budget.used(), 1000000u);
  EXPECT_FALSE(budget.exhausted());
}

TEST(WorkBudget, ThrowsPastLimit) {
  WorkBudget budget(10);
  budget.charge(10);
  EXPECT_EQ(budget.used(), 10u);
  EXPECT_TRUE(budget.exhausted());
  try {
    budget.charge(5);
    FAIL() << "charge past the limit must throw";
  } catch (const WorkBudgetExceeded& e) {
    EXPECT_EQ(e.limit(), 10u);
    EXPECT_EQ(e.used(), 15u);
  }
}

TEST(SplitMix64, DeterministicAndSeedSensitive) {
  SplitMix64 a(42), b(42), c(43);
  bool differs = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(SplitMix64, BoundedDraws) {
  SplitMix64 prng(7);
  for (int i = 0; i < 256; ++i) {
    EXPECT_LT(prng.below(13), 13u);
    const double u = prng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(AtomicWrite, WritesAndOverwrites) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "bb_util_test_atomic";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "artifact.json").string();

  write_file_atomic(path, "{\"v\":1}\n");
  write_file_atomic(path, "{\"v\":2}\n");

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "{\"v\":2}\n");

  // No temporary files left behind next to the target.
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

TEST(AtomicWrite, ThrowsOnUnwritablePath) {
  EXPECT_THROW(write_file_atomic("/nonexistent-dir/sub/x.json", "data"),
               std::runtime_error);
}

TEST(ParseLl, AcceptsWholeIntegersOnly) {
  EXPECT_EQ(parse_ll("42"), 42);
  EXPECT_EQ(parse_ll("-7"), -7);
  EXPECT_EQ(parse_ll("  19 "), 19);  // surrounding whitespace is fine
  EXPECT_EQ(parse_ll("0"), 0);
  EXPECT_FALSE(parse_ll(""));
  EXPECT_FALSE(parse_ll("  "));
  EXPECT_FALSE(parse_ll("12x"));
  EXPECT_FALSE(parse_ll("x12"));
  EXPECT_FALSE(parse_ll("1 2"));
  EXPECT_FALSE(parse_ll("3.5"));
  EXPECT_FALSE(parse_ll("99999999999999999999999"));  // out of range
}

TEST(ParseJson, RoundTripsScalarsAndContainers) {
  std::string error;
  const auto doc = parse_json(
      R"({"s":"a\"bé","n":-3.5,"i":42,"b":true,"z":null,)"
      R"("a":[1,2,3],"o":{"k":"v"}})",
      &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->get_string("s"), "a\"b\xc3\xa9");
  EXPECT_DOUBLE_EQ(doc->get("n")->number, -3.5);
  EXPECT_FALSE(doc->get("n")->is_integer);
  EXPECT_EQ(doc->get_int("i", -1), 42);
  EXPECT_TRUE(doc->get_bool("b", false));
  EXPECT_TRUE(doc->get("z")->is_null());
  ASSERT_EQ(doc->get("a")->array.size(), 3u);
  EXPECT_EQ(doc->get("a")->array[1].integer, 2);
  EXPECT_EQ(doc->get("o")->get_string("k"), "v");
}

TEST(ParseJson, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\":1,}", "nan", "+1"}) {
    std::string error;
    EXPECT_FALSE(parse_json(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ParseJson, BoundsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(parse_json(deep).has_value());
  std::string ok = "[[[[[[1]]]]]]";
  EXPECT_TRUE(parse_json(ok).has_value());
}

}  // namespace
}  // namespace bb::util
