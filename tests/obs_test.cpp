// Contracts of the observability subsystem: JsonWriter byte-exactness,
// histogram bucketing, the disabled-tracing fast path (no allocation),
// span collection across thread-pool workers, and byte-determinism of
// the metrics snapshot for same-seed serial flows.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <string_view>

#include "src/balsa/compile.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/flow.hpp"
#include "src/minimalist/cache.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/session.hpp"
#include "src/obs/trace.hpp"
#include "src/util/json.hpp"
#include "src/util/thread_pool.hpp"

// Allocation counter for the disabled-path test: every scalar/array
// non-aligned allocation in this binary bumps g_allocations.  (Aligned
// overloads fall through to the default implementation; nothing the
// disabled span path touches uses them.)
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace bb {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              std::string_view needle) {
  std::size_t n = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

TEST(JsonWriter, EmitsExactBytes) {
  util::JsonWriter w;
  w.begin_object();
  w.member("a", 1);
  w.key("b").begin_array();
  w.begin_object().member("c", "x\n").end_object();
  w.value(true);
  w.end_array();
  w.member("d", 1.5);
  w.member("e", 0.12345, 2);
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"a\":1,\"b\":[{\"c\":\"x\\n\"},true],\"d\":1.500,\"e\":0.12}");
}

TEST(JsonWriter, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(util::json_escape("a\"b\\c\td\x01"), "a\\\"b\\\\c\\td\\u0001");
}

TEST(JsonWriter, ThrowsOnUnbalancedDocuments) {
  util::JsonWriter unclosed;
  unclosed.begin_object();
  EXPECT_THROW(unclosed.str(), std::logic_error);

  util::JsonWriter mismatched;
  mismatched.begin_object();
  EXPECT_THROW(mismatched.end_array(), std::logic_error);

  util::JsonWriter dangling;
  dangling.begin_object();
  dangling.key("k");
  EXPECT_THROW(dangling.str(), std::logic_error);

  util::JsonWriter key_in_array;
  key_in_array.begin_array();
  EXPECT_THROW(key_in_array.key("k"), std::logic_error);
}

TEST(Histogram, LogBucketEdges) {
  // Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(obs::Histogram::bucket_index(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_index(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_index(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_index(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_index(7), 3u);
  EXPECT_EQ(obs::Histogram::bucket_index(8), 4u);
  EXPECT_EQ(obs::Histogram::bucket_index(UINT64_MAX),
            obs::Histogram::kBuckets - 1);
  EXPECT_EQ(obs::Histogram::bucket_lower(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_lower(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_lower(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_lower(3), 4u);
  EXPECT_EQ(obs::Histogram::bucket_lower(4), 8u);

  obs::Histogram h;
  for (const std::uint64_t v : {0u, 1u, 2u, 3u, 4u, 7u, 8u}) h.record(v);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 25u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 1
  EXPECT_EQ(h.bucket_count(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket_count(3), 2u);  // 4, 7
  EXPECT_EQ(h.bucket_count(4), 1u);  // 8
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Registry, InstrumentReferencesAreStableAcrossReset) {
  obs::Registry& registry = obs::Registry::global();
  obs::Counter& c = registry.counter("obs_test.stable");
  c.add(3);
  EXPECT_EQ(&c, &registry.counter("obs_test.stable"));
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add();
  EXPECT_EQ(registry.counter("obs_test.stable").value(), 1u);

  obs::Gauge& g = registry.gauge("obs_test.gauge");
  g.update_max(5);
  g.update_max(3);
  EXPECT_EQ(g.value(), 5);
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero) {
  obs::Histogram h;
  EXPECT_DOUBLE_EQ(h.capture().quantile(0.5), 0.0);
}

TEST(Histogram, QuantileOfSingleValueIsExact) {
  // The min/max clamp collapses a single-value histogram to the value
  // for every q, even though 7 sits mid-bucket in [4, 8).
  obs::Histogram h;
  h.record(7);
  const obs::Histogram::Snapshot s = h.capture();
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 7.0);
}

TEST(Histogram, TailQuantileLandsInTheUpperBucket) {
  // Two samples three decades apart: p99 must land on the slow one
  // (cumulative-count convention), not round down to the fast one.
  obs::Histogram h;
  h.record(2);
  h.record(40000);
  const obs::Histogram::Snapshot s = h.capture();
  EXPECT_GE(s.quantile(0.99), 32768.0);
  EXPECT_LE(s.quantile(0.99), 40000.0);
  EXPECT_LE(s.quantile(0.50), 4.0);
  EXPECT_GE(s.quantile(0.50), 2.0);
}

TEST(Histogram, QuantileStaysInsideTheObservedRange) {
  // Documented error bound: the estimate shares the true order
  // statistic's power-of-two bucket (factor of 2), and never escapes
  // [min, max].
  obs::Histogram h;
  for (int i = 0; i < 500; ++i) h.record(65);
  for (int i = 0; i < 500; ++i) h.record(127);
  const obs::Histogram::Snapshot s = h.capture();
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_GE(s.quantile(q), 65.0) << "q=" << q;
    EXPECT_LE(s.quantile(q), 127.0) << "q=" << q;
  }
}

TEST(Histogram, SnapshotCountIsDerivedFromBuckets) {
  obs::Histogram h;
  h.record(3);
  h.record(9);
  const obs::Histogram::Snapshot s = h.capture();
  std::uint64_t from_buckets = 0;
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    from_buckets += s.buckets[i];
  }
  EXPECT_EQ(s.count, from_buckets);
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.sum, 12u);
  EXPECT_EQ(s.min, 3u);
  EXPECT_EQ(s.max, 9u);
}

TEST(Registry, SnapshotJsonCarriesQuantileEstimates) {
  obs::Registry& registry = obs::Registry::global();
  registry.reset();
  registry.histogram("obs_test.q").record(7);
  const std::string json = registry.snapshot_json();
  EXPECT_NE(json.find("\"obs_test.q\":{\"count\":1,\"sum\":7,\"min\":7,"
                      "\"max\":7,\"p50\":7.000,\"p90\":7.000,\"p99\":7.000"),
            std::string::npos)
      << json;
}

TEST(Registry, JsonAndPrometheusRenderOneSnapshot) {
  obs::Registry& registry = obs::Registry::global();
  registry.reset();
  registry.counter("obs_test.prom.count").add(3);
  registry.gauge("obs_test.prom.gauge").set(-2);
  obs::Histogram& h = registry.histogram("obs_test.prom.hist");
  h.record(0);
  h.record(1);
  h.record(5);
  const obs::RegistrySnapshot snap = registry.snapshot();
  const std::string json = obs::Registry::to_json(snap);
  const std::string text = obs::Registry::to_prometheus(snap);

  EXPECT_NE(json.find("\"obs_test.prom.count\":3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bb_obs_test_prom_count counter\n"
                      "bb_obs_test_prom_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE bb_obs_test_prom_gauge gauge\n"
                      "bb_obs_test_prom_gauge -2\n"),
            std::string::npos);
  // Cumulative le series with exact integer bounds: 0 | 1 | [2,3] |
  // [4,7], then +Inf / _sum / _count.
  EXPECT_NE(text.find("# TYPE bb_obs_test_prom_hist histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("bb_obs_test_prom_hist_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("bb_obs_test_prom_hist_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("bb_obs_test_prom_hist_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("bb_obs_test_prom_hist_bucket{le=\"7\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("bb_obs_test_prom_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("bb_obs_test_prom_hist_sum 6\n"), std::string::npos);
  EXPECT_NE(text.find("bb_obs_test_prom_hist_count 3\n"), std::string::npos);
}

TEST(TraceContext, ScopeNestsAndRestores) {
  EXPECT_EQ(obs::current_trace_id(), "");
  {
    obs::TraceContextScope outer("ctx-outer");
    EXPECT_EQ(obs::current_trace_id(), "ctx-outer");
    {
      obs::TraceContextScope inner("ctx-inner");
      EXPECT_EQ(obs::current_trace_id(), "ctx-inner");
    }
    EXPECT_EQ(obs::current_trace_id(), "ctx-outer");
  }
  EXPECT_EQ(obs::current_trace_id(), "");
}

TEST(Tracer, RingCapacityIsClamped) {
  obs::Tracer::set_ring_capacity(1);
  EXPECT_EQ(obs::Tracer::ring_capacity(), 1024u);
  obs::Tracer::set_ring_capacity(std::size_t{1} << 30);
  EXPECT_EQ(obs::Tracer::ring_capacity(), std::size_t{1} << 20);
  obs::Tracer::set_ring_capacity(65536);
  EXPECT_EQ(obs::Tracer::ring_capacity(), 65536u);
}

TEST(Tracer, CollectJsonFiltersByTraceIdWithoutDraining) {
  obs::Tracer::instance().enable();
  {
    obs::TraceContextScope scope("ctx-a");
    obs::Span span("obs_test.collect_a", obs::kCatFlow);
  }
  {
    obs::TraceContextScope scope("ctx-b");
    obs::Span first("obs_test.collect_b1", obs::kCatFlow);
    first.finish();
    obs::Span second("obs_test.collect_b2", obs::kCatFlow);
  }
  obs::Tracer& tracer = obs::Tracer::instance();

  const std::string all = tracer.collect_json();
  EXPECT_EQ(count_occurrences(all, "\"name\":\"obs_test.collect_a\""), 1u);
  EXPECT_EQ(count_occurrences(all, "\"name\":\"obs_test.collect_b1\""), 1u);
  EXPECT_EQ(count_occurrences(all, "\"trace_id\":\"ctx-a\""), 1u);

  const std::string only_b = tracer.collect_json(0, "ctx-b");
  EXPECT_EQ(count_occurrences(only_b, "\"name\":\"obs_test.collect_a\""), 0u);
  EXPECT_EQ(count_occurrences(only_b, "\"name\":\"obs_test.collect_b1\""), 1u);
  EXPECT_EQ(count_occurrences(only_b, "\"name\":\"obs_test.collect_b2\""), 1u);

  // `last` keeps the newest spans (by start time).
  const std::string newest = tracer.collect_json(1, "ctx-b");
  EXPECT_EQ(count_occurrences(newest, "\"name\":\"obs_test.collect_b1\""), 0u);
  EXPECT_EQ(count_occurrences(newest, "\"name\":\"obs_test.collect_b2\""), 1u);

  // collect_json is a live view: a second collection still sees the
  // spans, and only flush_json drains them.
  const std::string again = tracer.collect_json();
  EXPECT_EQ(count_occurrences(again, "\"name\":\"obs_test.collect_a\""), 1u);
  obs::Tracer::instance().disable();
  const std::string flushed = tracer.flush_json();
  EXPECT_EQ(count_occurrences(flushed, "\"name\":\"obs_test.collect_a\""), 1u);
  const std::string drained = tracer.collect_json();
  EXPECT_EQ(count_occurrences(drained, "\"name\":\"obs_test.collect_a\""), 0u);
}

TEST(Registry, SnapshotIsSortedAndCarriesSchemaVersion) {
  obs::Registry& registry = obs::Registry::global();
  registry.reset();
  registry.counter("obs_test.zz").add(2);
  registry.counter("obs_test.aa").add(1);
  const std::string json = registry.snapshot_json();
  EXPECT_EQ(json.rfind("{\"schema_version\":", 0), 0u);
  const std::size_t aa = json.find("\"obs_test.aa\":1");
  const std::size_t zz = json.find("\"obs_test.zz\":2");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, zz);
}

TEST(Span, DisabledPathAllocatesNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    obs::Span span("obs_test.disabled", obs::kCatFlow);
    span.arg("key", std::string_view("value"));
    span.arg("n", std::uint64_t{42});
  }
  EXPECT_EQ(g_allocations.load(), before)
      << "a disabled span must not allocate";
}

TEST(Span, AccumulatesMillisecondsEvenWhenDisabled) {
  ASSERT_FALSE(obs::tracing_enabled());
  double total = 0.0;
  {
    obs::Span span("obs_test.accumulate", obs::kCatFlow, &total);
  }
  EXPECT_GE(total, 0.0);
  const double first = total;
  obs::Span span("obs_test.accumulate", obs::kCatFlow, &total);
  EXPECT_GT(span.finish(), -1.0);
  EXPECT_GE(total, first);
  EXPECT_EQ(span.finish(), 0.0) << "finish() must be idempotent";
}

TEST(Tracer, CollectsNestedSpansAcrossPoolWorkers) {
  obs::install_thread_pool_instrumentation();
  obs::Tracer::instance().enable();
  {
    util::ThreadPool pool(4);
    util::parallel_for_index(pool, 8, [](std::size_t i) {
      obs::Span outer("obs_test.outer", obs::kCatPool);
      outer.arg("index", static_cast<std::uint64_t>(i));
      obs::Span inner("obs_test.inner", obs::kCatPool);
    });
  }  // pool joined: every task observer has fired
  obs::Tracer::instance().disable();
  const std::string json = obs::Tracer::instance().flush_json();

  EXPECT_EQ(json.rfind("{\"schema_version\":", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"obs_test.outer\""), 8u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"obs_test.inner\""), 8u);
  // One pool.task span per submitted worker task (4 workers).
  EXPECT_GE(count_occurrences(json, "\"name\":\"pool.task\""), 1u);
  EXPECT_NE(json.find("\"queue_wait_us\":"), std::string::npos);

  // The flush drained everything: a second flush is empty of spans.
  const std::string empty = obs::Tracer::instance().flush_json();
  EXPECT_EQ(count_occurrences(empty, "\"name\":\"obs_test.outer\""), 0u);
}

TEST(Tracer, SessionWritesTraceAndMetricsFiles) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/obs_test_trace.json";
  const std::string metrics_path = dir + "/obs_test_metrics.json";
  {
    obs::Session session(trace_path, metrics_path);
    EXPECT_TRUE(session.owns_trace());
    // A nested session must not steal ownership of the trace.
    obs::Session nested(trace_path + ".nested", "");
    EXPECT_FALSE(nested.owns_trace());
    obs::Span span("obs_test.session", obs::kCatFlow);
  }
  EXPECT_FALSE(obs::tracing_enabled());
  std::FILE* f = std::fopen(trace_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string trace;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;) {
    trace.append(buf, n);
  }
  std::fclose(f);
  EXPECT_NE(trace.find("\"obs_test.session\""), std::string::npos);

  std::FILE* m = std::fopen(metrics_path.c_str(), "rb");
  ASSERT_NE(m, nullptr);
  std::fclose(m);
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(MetricsDeterminism, SerialSameSeedFlowsSnapshotByteIdentically) {
  const auto net = balsa::compile_source(designs::ssem().source);
  const auto run = [&net] {
    obs::Registry::global().reset();
    minimalist::SynthCache cache;
    flow::FlowOptions options = flow::FlowOptions::optimized();
    options.jobs = 1;
    options.cache_instance = &cache;
    flow::synthesize_control(net, options);
    return obs::Registry::global().snapshot_json();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"minimalist.cache.misses\":"), std::string::npos);
  EXPECT_NE(first.find("\"flow.controllers\":"), std::string::npos);
  EXPECT_NE(first.find("\"logic.ucp.solved\":"), std::string::npos);
}

}  // namespace
}  // namespace bb
