#include <gtest/gtest.h>

#include "src/balsa/compile.hpp"
#include "src/balsa/parser.hpp"
#include "src/hsnet/to_ch.hpp"

namespace bb::balsa {
namespace {

TEST(Parser, MinimalProcedure) {
  const Procedure p = parse_procedure(
      "procedure tick (sync t) is begin loop sync t end end");
  EXPECT_EQ(p.name, "tick");
  ASSERT_EQ(p.ports.size(), 1u);
  EXPECT_EQ(p.ports[0].dir, PortDir::kSync);
  ASSERT_NE(p.body, nullptr);
  EXPECT_EQ(p.body->kind, Command::Kind::kLoop);
}

TEST(Parser, PortsAndVariables) {
  const Procedure p = parse_procedure(R"(
    procedure buf (input in : 8; output out : 8; sync go, stop) is
      variable v, w : 8
      variable flag : 1
    begin
      loop in -> v ; out <- v end
    end)");
  EXPECT_EQ(p.ports.size(), 4u);
  EXPECT_EQ(p.ports[1].width, 8);
  EXPECT_EQ(p.ports[2].name, "go");
  EXPECT_EQ(p.variables.size(), 3u);
  EXPECT_EQ(p.variables[2].width, 1);
}

TEST(Parser, SequenceAndParallel) {
  const Procedure p = parse_procedure(R"(
    procedure x (sync a, b) is begin
      loop (sync a ; sync b) || sync a end
    end)");
  EXPECT_EQ(p.body->body->kind, Command::Kind::kPar);
  EXPECT_EQ(p.body->body->children[0]->kind, Command::Kind::kSeq);
}

TEST(Parser, ControlConstructs) {
  const Procedure p = parse_procedure(R"(
    procedure y (input c : 2; sync t) is
      variable v : 2
    begin
      c -> v ;
      while v < 3 then
        if v = 1 then sync t else continue end ;
        case v of 0: sync t | 1, 2: continue else v := 0 end ;
        v := v + 1
      end
    end)");
  const Command& seq = *p.body;
  ASSERT_EQ(seq.kind, Command::Kind::kSeq);
  const Command& wh = *seq.children[1];
  ASSERT_EQ(wh.kind, Command::Kind::kWhile);
  const Command& inner = *wh.body;
  EXPECT_EQ(inner.children[0]->kind, Command::Kind::kIf);
  EXPECT_EQ(inner.children[1]->kind, Command::Kind::kCase);
  EXPECT_EQ(inner.children[1]->alts.size(), 3u);
  EXPECT_EQ(inner.children[1]->alts[1].labels,
            (std::vector<std::uint64_t>{1, 2}));
  EXPECT_TRUE(inner.children[1]->alts[2].labels.empty());
}

TEST(Parser, Expressions) {
  const Procedure p = parse_procedure(R"(
    procedure e (output o : 8) is
      variable v : 8
    begin
      o <- (v + 1 - 2 or v xor 3) ;
      o <- v[7..4] ;
      o <- not v and 0x0F ;
      o <- - v
    end)");
  EXPECT_EQ(p.body->children.size(), 4u);
  EXPECT_EQ(p.body->children[1]->value->kind, Expr::Kind::kSlice);
  EXPECT_EQ(p.body->children[1]->value->slice_hi, 7);
  EXPECT_EQ(p.body->children[3]->value->un_op, UnOp::kNeg);
}

TEST(Parser, Comments) {
  const Procedure p = parse_procedure(
      "-- header\nprocedure c (sync t) is begin -- mid\n sync t end");
  EXPECT_EQ(p.name, "c");
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_procedure("procedure"), ParseError);
  EXPECT_THROW(parse_procedure("procedure p (sync) is begin sync t end"),
               ParseError);
  EXPECT_THROW(
      parse_procedure("procedure p (sync t) is begin sync t end extra"),
      ParseError);
  EXPECT_THROW(
      parse_procedure("procedure p (input x : 99) is begin sync x end"),
      ParseError);
  EXPECT_THROW(parse_procedure("procedure p (sync t) is begin t end"),
               ParseError);
}

TEST(Compile, SyncLoop) {
  const auto net = compile_source(
      "procedure tick (sync t) is begin loop sync t end end");
  // Loop + direct connection to the singly-used port: one control
  // component, no datapath.
  ASSERT_EQ(net.components().size(), 1u);
  EXPECT_EQ(net.components()[0].kind, hsnet::ComponentKind::kLoop);
  EXPECT_EQ(net.components()[0].ports[0], "activate");
  EXPECT_EQ(net.components()[0].ports[1], "t");
}

TEST(Compile, MultiplyUsedSyncPortGetsCall) {
  const auto net = compile_source(
      "procedure two (sync t) is begin loop sync t ; sync t end end");
  int calls = 0;
  for (const auto& c : net.components()) {
    if (c.kind == hsnet::ComponentKind::kCall) ++calls;
  }
  EXPECT_EQ(calls, 1);
  // The call merges two clients onto the external port.
  for (const auto& c : net.components()) {
    if (c.kind == hsnet::ComponentKind::kCall) {
      ASSERT_EQ(c.ports.size(), 3u);
      EXPECT_EQ(c.ports.back(), "t");
    }
  }
}

TEST(Compile, AssignBuildsDatapath) {
  const auto net = compile_source(R"(
    procedure inc (sync go) is
      variable v : 8
    begin
      loop sync go ; v := v + 1 end
    end)");
  int fetches = 0, vars = 0, funcs = 0, consts = 0;
  for (const auto& c : net.components()) {
    switch (c.kind) {
      case hsnet::ComponentKind::kFetch: ++fetches; break;
      case hsnet::ComponentKind::kVariable: ++vars; break;
      case hsnet::ComponentKind::kBinaryFunc: ++funcs; break;
      case hsnet::ComponentKind::kConstant: ++consts; break;
      default: break;
    }
  }
  EXPECT_EQ(fetches, 1);
  EXPECT_EQ(vars, 1);
  EXPECT_EQ(funcs, 1);
  EXPECT_EQ(consts, 1);
}

TEST(Compile, VariableWritePortsCounted) {
  const auto net = compile_source(R"(
    procedure wr (input i : 4) is
      variable v : 4
    begin
      loop i -> v ; v := v + 1 end
    end)");
  for (const auto& c : net.components()) {
    if (c.kind == hsnet::ComponentKind::kVariable) {
      EXPECT_EQ(c.ways, 2);        // two write sites
      EXPECT_EQ(c.ports.size(), 3u);  // + one read site
    }
  }
}

TEST(Compile, WhileBuildsGuard) {
  const auto net = compile_source(R"(
    procedure w (sync t) is
      variable v : 2
    begin
      v := 0 ; while v < 2 then sync t ; v := v + 1 end
    end)");
  int whiles = 0, guards = 0;
  for (const auto& c : net.components()) {
    if (c.kind == hsnet::ComponentKind::kWhile) ++whiles;
    if (c.kind == hsnet::ComponentKind::kGuard) ++guards;
  }
  EXPECT_EQ(whiles, 1);
  EXPECT_EQ(guards, 1);
}

TEST(Compile, CaseBuildsSelectionTable) {
  const auto net = compile_source(R"(
    procedure c (input i : 2; sync a, b) is
      variable v : 2
    begin
      loop i -> v ; case v of 0: sync a | 1: sync b end end
    end)");
  bool found = false;
  for (const auto& c : net.components()) {
    if (c.kind != hsnet::ComponentKind::kGuard) continue;
    found = true;
    EXPECT_EQ(c.op, "index");
    ASSERT_EQ(c.labels.size(), 2u);
    EXPECT_EQ(c.labels[0], 0);
    EXPECT_EQ(c.labels[1], 1);
    EXPECT_EQ(c.ways, 3);  // two labelled branches + implicit skip
  }
  EXPECT_TRUE(found);
}

TEST(Compile, ExternalChannelsDeclared) {
  const auto net = compile_source(R"(
    procedure p (input i : 8; output o : 8) is
      variable v : 8
    begin
      loop i -> v ; o <- v end
    end)");
  ASSERT_NE(net.channel("activate"), nullptr);
  EXPECT_TRUE(net.channel("activate")->external);
  ASSERT_NE(net.channel("i"), nullptr);
  EXPECT_EQ(net.channel("i")->width, 8);
  EXPECT_TRUE(net.channel("i")->external);
}

TEST(Compile, ControlProgramsAreWellFormed) {
  const auto net = compile_source(R"(
    procedure p (input i : 4; output o : 4; sync t) is
      variable v : 4
    begin
      loop
        i -> v ;
        while v < 8 then v := v + 1 end ;
        if v = 8 then sync t else continue end ;
        o <- v
      end
    end)");
  // Every control component must translate to CH without errors.
  const auto programs = hsnet::control_programs(net);
  EXPECT_GE(programs.size(), 4u);
}

TEST(Compile, Errors) {
  EXPECT_THROW(compile_source("procedure p (sync t) is begin sync u end"),
               CompileError);
  EXPECT_THROW(
      compile_source("procedure p (input i : 4) is begin i <- 1 end"),
      CompileError);
  EXPECT_THROW(
      compile_source(
          "procedure p (output o : 4) is variable v : 4 begin o <- v end"),
      CompileError);
  EXPECT_THROW(compile_source("procedure p (sync t, t) is begin sync t end"),
               CompileError);
}

}  // namespace
}  // namespace bb::balsa
