// The synthesis service tier: controller codec round-trips, the
// persistent disk cache (corruption recovery, versioning, eviction,
// shared directories), the bounded in-memory cache, the wire protocol,
// and the daemon end to end over a real Unix-domain socket.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>

#include "src/bm/parse.hpp"
#include "src/minimalist/cache.hpp"
#include "src/minimalist/synth.hpp"
#include "src/serve/client.hpp"
#include "src/serve/codec.hpp"
#include "src/serve/disk_cache.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/server.hpp"
#include "src/util/json.hpp"
#include "src/util/json_parse.hpp"

namespace fs = std::filesystem;
using namespace bb;

namespace {

/// A fresh directory under the system temp root, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag) {
    path = fs::temp_directory_path() /
           (std::string("bb_serve_test_") + tag + "_" +
            std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

constexpr const char* kWireBms = R"(
name wire
input a_r 0
output a_a 0
0 1 a_r+ | a_a+
1 0 a_r- | a_a-
)";

constexpr const char* kSeqBms = R"(
name seq2
input r 0
output a1 0
output a2 0
0 1 r+ | a1+
1 2 r- | a1-
2 3 r+ | a2+
3 0 r- | a2-
)";

minimalist::SynthesizedController wire_ctrl() {
  return minimalist::synthesize(bm::parse_bms(kWireBms));
}

}  // namespace

// ---- codec ----

TEST(Codec, RoundTripIsByteIdentical) {
  const auto ctrl = wire_ctrl();
  const std::string text = serve::serialize_controller(ctrl);
  std::string error;
  const auto back = serve::deserialize_controller(text, &error);
  ASSERT_TRUE(back.has_value()) << error;
  // Serializing the deserialized controller reproduces the bytes, and
  // the logic is behaviorally identical (.sol rendering included).
  EXPECT_EQ(serve::serialize_controller(*back), text);
  EXPECT_EQ(back->to_sol(), ctrl.to_sol());
  EXPECT_EQ(back->name, ctrl.name);
  EXPECT_EQ(back->inputs, ctrl.inputs);
  EXPECT_EQ(back->outputs, ctrl.outputs);
  EXPECT_EQ(back->initial_state_code, ctrl.initial_state_code);
}

TEST(Codec, RejectsTruncationAndGarbageWithoutThrowing) {
  const std::string text = serve::serialize_controller(wire_ctrl());
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{5}, text.size() / 4, text.size() / 2}) {
    EXPECT_FALSE(serve::deserialize_controller(text.substr(0, cut)))
        << "accepted a prefix of " << cut << " bytes";
  }
  EXPECT_FALSE(serve::deserialize_controller("not a controller at all"));
  EXPECT_FALSE(serve::deserialize_controller(text + "trailing"));
  // Wrong codec version line.
  std::string wrong = text;
  wrong.replace(0, wrong.find('\n'), "bbctrl 999");
  EXPECT_FALSE(serve::deserialize_controller(wrong));
}

// ---- disk cache ----

TEST(DiskCache, RoundTripAcrossInstances) {
  TempDir dir("roundtrip");
  const auto ctrl = wire_ctrl();
  {
    serve::DiskCache cache(dir.str());
    cache.store("key1", ctrl);
    EXPECT_EQ(cache.stats().stores, 1u);
  }
  // A second instance on the same directory (a restarted daemon) sees
  // the entry.
  serve::DiskCache cache(dir.str());
  const auto back = cache.load("key1");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(serve::serialize_controller(*back),
            serve::serialize_controller(ctrl));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_FALSE(cache.load("other-key").has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DiskCache, CorruptEntryIsDroppedAndFileRemoved) {
  TempDir dir("corrupt");
  serve::DiskCache cache(dir.str());
  cache.store("key1", wire_ctrl());
  const std::string path = cache.entry_path("key1");
  ASSERT_TRUE(fs::exists(path));
  // Flip bytes in the middle of the entry.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
    f.write("XXXX", 4);
  }
  EXPECT_FALSE(cache.load("key1").has_value());
  EXPECT_FALSE(fs::exists(path)) << "corrupt entry should be deleted";
  EXPECT_EQ(cache.stats().corrupt_dropped, 1u);
  // The next load is a clean miss, and the key is re-storable.
  EXPECT_FALSE(cache.load("key1").has_value());
  cache.store("key1", wire_ctrl());
  EXPECT_TRUE(cache.load("key1").has_value());
}

TEST(DiskCache, VersionMismatchIsDroppedAndFileRemoved) {
  TempDir dir("version");
  serve::DiskCache cache(dir.str());
  cache.store("key1", wire_ctrl());
  const std::string path = cache.entry_path("key1");
  std::string entry;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    entry = buf.str();
  }
  ASSERT_EQ(entry.rfind("bbdc 2\n", 0), 0u);
  entry.replace(0, 6, "bbdc 3");  // a future format revision
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << entry;
  }
  EXPECT_FALSE(cache.load("key1").has_value());
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(cache.stats().corrupt_dropped, 1u);
}

TEST(DiskCache, KeyMismatchOnHashCollisionIsAMiss) {
  TempDir dir("collide");
  serve::DiskCache cache(dir.str());
  cache.store("key1", wire_ctrl());
  // Simulate a (astronomically unlikely) filename collision: copy the
  // entry of key1 to where key2 would live.  The embedded key protects
  // key2's load from returning key1's controller.
  fs::copy_file(cache.entry_path("key1"), cache.entry_path("key2"));
  EXPECT_FALSE(cache.load("key2").has_value());
  EXPECT_TRUE(cache.load("key1").has_value());
}

TEST(DiskCache, EvictsLeastRecentlyUsedPastSizeCap) {
  TempDir dir("evict");
  const auto ctrl = wire_ctrl();
  const std::uint64_t entry_size =
      serve::serialize_controller(ctrl).size() + 64;  // + framing slack
  // Cap fits roughly two entries, so the third store must evict.
  serve::DiskCache cache(dir.str(), 2 * entry_size);
  cache.store("old", ctrl);
  cache.store("mid", ctrl);
  // Touch "old": recency rides the persisted access counter (not mtime,
  // whose 1-second granularity cannot order back-to-back operations),
  // so the load promotes it past "mid".
  ASSERT_TRUE(cache.load("old").has_value());
  cache.store("new", ctrl);
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_FALSE(fs::exists(cache.entry_path("mid")))
      << "the least recently used entry should be evicted first";
  EXPECT_TRUE(fs::exists(cache.entry_path("old")))
      << "the touched entry must survive the eviction";
  EXPECT_TRUE(fs::exists(cache.entry_path("new")));
}

// ---- crash recovery ----

TEST(DiskCache, RecoveryScavengesStaleWriteTemporaries) {
  TempDir dir("scavenge");
  std::string entry;
  {
    serve::DiskCache cache(dir.str());
    cache.store("k", wire_ctrl());
    entry = cache.entry_path("k");
  }
  // Plant the residue of a writer killed mid-write (stale, past the
  // grace window) and a temp a live writer could still own (fresh).
  const fs::path stale = dir.path / "dead.bbc.tmp.999.1";
  const fs::path fresh = dir.path / "dead.bbc.tmp.999.2";
  for (const fs::path& p : {stale, fresh}) {
    std::ofstream(p, std::ios::binary) << "torn bytes";
  }
  fs::last_write_time(
      stale, fs::file_time_type::clock::now() - std::chrono::minutes(5));

  serve::DiskCache cache(dir.str());
  EXPECT_EQ(cache.stats().recovered_tmp, 1u);
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(fs::exists(fresh)) << "a temp inside the grace window may "
                                    "belong to a live writer";
  EXPECT_TRUE(cache.load("k").has_value());
  EXPECT_EQ(cache.verify_all().bad, 0u);
}

TEST(DiskCache, RecoveryQuarantinesInvalidEntriesInsteadOfTrustingThem) {
  TempDir dir("quarantine");
  std::string good_path, bad_path;
  std::uint64_t gen = 0;
  {
    serve::DiskCache cache(dir.str());
    gen = cache.generation();
    cache.store("good", wire_ctrl());
    cache.store("bad", wire_ctrl());
    good_path = cache.entry_path("good");
    bad_path = cache.entry_path("bad");
  }
  // Corrupt "bad" behind the store's back (bit rot, torn hardware
  // write): the reopen must refuse to trust it.
  {
    std::fstream f(bad_path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(bad_path) / 2));
    f.write("XXXX", 4);
  }

  serve::DiskCache cache(dir.str());
  EXPECT_EQ(cache.generation(), gen + 1) << "each open bumps the stamp";
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_FALSE(fs::exists(bad_path));
  // Quarantined means preserved for forensics, not silently deleted.
  std::size_t quarantined_files = 0;
  for (const auto& it : fs::directory_iterator(dir.path / "quarantine")) {
    (void)it;
    ++quarantined_files;
  }
  EXPECT_EQ(quarantined_files, 1u);
  EXPECT_TRUE(cache.load("good").has_value());
  EXPECT_EQ(cache.verify_all().bad, 0u);
}

TEST(DiskCache, RecoveryCompletesJournaledEvictionWithoutDroppingLiveEntries) {
  TempDir dir("journal");
  std::string stale_path, live_path;
  {
    serve::DiskCache cache(dir.str());
    cache.store("stale", wire_ctrl());  // access counter 1
    cache.store("live", wire_ctrl());   // access counter 2
    stale_path = cache.entry_path("stale");
    live_path = cache.entry_path("live");
  }
  // Hand-write the journal a crashed evictor would have left: both
  // entries condemned at access counter 1.  "stale" still carries 1 and
  // must go; "live" was touched after the decision (its persisted
  // counter is 2 > 1) and must survive the replay.
  {
    std::ofstream journal(dir.path / "evict.journal", std::ios::binary);
    journal << "bbdj 1\n"
            << "1 " << fs::path(stale_path).filename().string() << "\n"
            << "1 " << fs::path(live_path).filename().string() << "\n";
  }

  serve::DiskCache cache(dir.str());
  EXPECT_EQ(cache.stats().journal_applied, 1u);
  EXPECT_FALSE(fs::exists(stale_path));
  EXPECT_TRUE(fs::exists(live_path))
      << "an entry touched after the eviction decision must never drop";
  EXPECT_FALSE(fs::exists(dir.path / "evict.journal"))
      << "a replayed journal is consumed";
  EXPECT_TRUE(cache.load("live").has_value());
  EXPECT_EQ(cache.verify_all().bad, 0u);
}

TEST(DiskCache, VerifyAllCountsEveryDefect) {
  TempDir dir("verify");
  serve::DiskCache cache(dir.str());
  cache.store("a", wire_ctrl());
  cache.store("b", wire_ctrl());
  auto report = cache.verify_all();
  EXPECT_EQ(report.entries, 2u);
  EXPECT_EQ(report.ok, 2u);
  EXPECT_EQ(report.bad, 0u);
  {
    std::ofstream out(cache.entry_path("b"),
                      std::ios::binary | std::ios::trunc);
    out << "bbdc 2\nnot a real entry";
  }
  report = cache.verify_all();
  EXPECT_EQ(report.entries, 2u);
  EXPECT_EQ(report.bad, 1u);
  EXPECT_EQ(report.first_bad, cache.entry_path("b"));
}

TEST(DiskCache, ConcurrentSharedDirectory) {
  TempDir dir("shared");
  // Two independent DiskCache instances on one directory, as two daemon
  // processes sharing BB_CACHE_DIR would be, hammered concurrently.
  serve::DiskCache a(dir.str());
  serve::DiskCache b(dir.str());
  const auto ctrl = wire_ctrl();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      serve::DiskCache& cache = (t % 2 == 0) ? a : b;
      for (int i = 0; i < 20; ++i) {
        const std::string key = "key" + std::to_string(i % 5);
        cache.store(key, ctrl);
        const auto got = cache.load(key);
        // A concurrent load may race a store of the same key, but the
        // atomic rename means it sees a complete entry or none.
        if (got) {
          EXPECT_EQ(serve::serialize_controller(*got),
                    serve::serialize_controller(ctrl));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(a.load("key" + std::to_string(i)).has_value());
  }
}

// ---- tiered SynthCache ----

TEST(SynthCacheTiers, DiskTierPersistsAcrossCacheInstances) {
  TempDir dir("tiers");
  const bm::Spec spec = bm::parse_bms(kWireBms);
  serve::DiskCache disk(dir.str());
  minimalist::CacheTier tier;
  {
    minimalist::SynthCache mem;
    mem.set_backing_store(&disk);
    minimalist::synthesize_cached(spec, minimalist::SynthMode::kSpeed, mem,
                                  nullptr, nullptr, &tier);
    EXPECT_EQ(tier, minimalist::CacheTier::kMiss);
    minimalist::synthesize_cached(spec, minimalist::SynthMode::kSpeed, mem,
                                  nullptr, nullptr, &tier);
    EXPECT_EQ(tier, minimalist::CacheTier::kMemory);
  }
  // A fresh memory tier (daemon restart) hits the disk tier, and the
  // result is byte-identical to a fresh synthesis.
  minimalist::SynthCache mem;
  mem.set_backing_store(&disk);
  const auto cached = minimalist::synthesize_cached(
      spec, minimalist::SynthMode::kSpeed, mem, nullptr, nullptr, &tier);
  EXPECT_EQ(tier, minimalist::CacheTier::kDisk);
  EXPECT_EQ(cached.to_sol(), wire_ctrl().to_sol());
  EXPECT_EQ(mem.stats().disk_hits, 1u);
  // The disk hit was promoted into memory.
  minimalist::synthesize_cached(spec, minimalist::SynthMode::kSpeed, mem,
                                nullptr, nullptr, &tier);
  EXPECT_EQ(tier, minimalist::CacheTier::kMemory);
}

TEST(SynthCacheTiers, MemoryTierEvictsLruAtCap) {
  const bm::Spec wire = bm::parse_bms(kWireBms);
  const bm::Spec seq = bm::parse_bms(kSeqBms);
  const bm::Spec wire_area = wire;  // same spec, distinct (spec, mode) key
  minimalist::SynthCache cache;
  cache.set_max_entries(2);
  minimalist::synthesize_cached(wire, minimalist::SynthMode::kSpeed, cache);
  minimalist::synthesize_cached(seq, minimalist::SynthMode::kSpeed, cache);
  // Touch `wire` so `seq` is the least recently used...
  minimalist::CacheTier tier;
  minimalist::synthesize_cached(wire, minimalist::SynthMode::kSpeed, cache,
                                nullptr, nullptr, &tier);
  EXPECT_EQ(tier, minimalist::CacheTier::kMemory);
  // ...and a third entry evicts `seq`, not `wire`.
  minimalist::synthesize_cached(wire_area, minimalist::SynthMode::kArea,
                                cache);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
  minimalist::synthesize_cached(wire, minimalist::SynthMode::kSpeed, cache,
                                nullptr, nullptr, &tier);
  EXPECT_EQ(tier, minimalist::CacheTier::kMemory);
  minimalist::synthesize_cached(seq, minimalist::SynthMode::kSpeed, cache,
                                nullptr, nullptr, &tier);
  EXPECT_EQ(tier, minimalist::CacheTier::kMiss) << "seq should be evicted";
}

// ---- protocol ----

TEST(Protocol, ParsesSynthesizeRequestWithOptions) {
  serve::Request req;
  std::string error;
  ASSERT_TRUE(serve::parse_request(
      R"({"schema_version":1,"id":"r1","op":"synthesize","design":"systolic",)"
      R"("options":{"jobs":2,"cache":false,"work_budget":1000}})",
      &req, &error))
      << error;
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.design, "systolic");
  ASSERT_TRUE(req.options.jobs.has_value());
  EXPECT_EQ(*req.options.jobs, 2);
  ASSERT_TRUE(req.options.cache.has_value());
  EXPECT_FALSE(*req.options.cache);
  const auto options = serve::apply_options(req.options, 0);
  EXPECT_EQ(options.jobs, 2);
  EXPECT_FALSE(options.cache);
  EXPECT_EQ(options.work_budget, 1000);
}

TEST(Protocol, ParsesAnalyzeRequestWithSarifOption) {
  serve::Request req;
  std::string error;
  ASSERT_TRUE(serve::parse_request(
      R"({"schema_version":1,"id":"a1","op":"analyze","design":"systolic",)"
      R"("options":{"sarif":true,"no_analyze":true}})",
      &req, &error))
      << error;
  EXPECT_EQ(req.op, "analyze");
  EXPECT_TRUE(req.options.sarif);
  EXPECT_TRUE(req.options.no_analyze);
  // analyze needs exactly one of design/source, like synthesize.
  EXPECT_FALSE(serve::parse_request(
      R"({"schema_version":1,"op":"analyze"})", &req, &error));
  EXPECT_FALSE(serve::parse_request(
      R"({"schema_version":1,"op":"analyze","design":"a","source":"b"})",
      &req, &error));
}

TEST(Protocol, ParsesIncrementalRequestsAndPolicesTheProjectName) {
  serve::Request req;
  std::string error;
  ASSERT_TRUE(serve::parse_request(
      R"({"schema_version":1,"op":"synthesize_incremental",)"
      R"("source":"procedure p (sync s) is begin sync s end"})",
      &req, &error))
      << error;
  EXPECT_EQ(req.op, "synthesize_incremental");
  EXPECT_EQ(req.project, "default") << "project defaults when absent";
  ASSERT_TRUE(serve::parse_request(
      R"({"schema_version":1,"op":"synthesize_incremental","source":"x",)"
      R"("project":"team-42_a"})",
      &req, &error))
      << error;
  EXPECT_EQ(req.project, "team-42_a");
  // The op needs inline source (a design name has no project state), and
  // the project name is a path component — traversal characters are
  // rejected at the protocol boundary.
  EXPECT_FALSE(serve::parse_request(
      R"({"schema_version":1,"op":"synthesize_incremental"})", &req,
      &error));
  EXPECT_FALSE(serve::parse_request(
      R"({"schema_version":1,"op":"synthesize_incremental","source":"x",)"
      R"("project":"../escape"})",
      &req, &error));
  EXPECT_FALSE(serve::parse_request(
      R"({"schema_version":1,"op":"synthesize_incremental","source":"x",)"
      R"("project":""})",
      &req, &error));
}

TEST(Protocol, RejectsDefectiveRequests) {
  serve::Request req;
  std::string error;
  EXPECT_FALSE(serve::parse_request("not json", &req, &error));
  EXPECT_FALSE(serve::parse_request("{}", &req, &error));  // no version
  EXPECT_FALSE(serve::parse_request(
      R"({"schema_version":99,"op":"ping"})", &req, &error));
  EXPECT_FALSE(serve::parse_request(
      R"({"schema_version":1,"op":"frobnicate"})", &req, &error));
  // synthesize needs exactly one input.
  EXPECT_FALSE(serve::parse_request(
      R"({"schema_version":1,"op":"synthesize"})", &req, &error));
  EXPECT_FALSE(serve::parse_request(
      R"({"schema_version":1,"op":"synthesize","design":"a","source":"b"})",
      &req, &error));
  EXPECT_FALSE(serve::parse_request(
      R"({"schema_version":1,"op":"synthesize_bm"})", &req, &error));
  // Typed option members reject wrong types.
  EXPECT_FALSE(serve::parse_request(
      R"({"schema_version":1,"op":"synthesize","design":"a",)"
      R"("options":{"jobs":"two"}})",
      &req, &error));
}

TEST(Protocol, ParsesMetricsAndTraceRequests) {
  serve::Request req;
  std::string error;
  ASSERT_TRUE(serve::parse_request(
      R"({"schema_version":1,"op":"metrics","format":"both"})", &req, &error))
      << error;
  EXPECT_EQ(req.op, "metrics");
  EXPECT_EQ(req.format, "both");
  ASSERT_TRUE(serve::parse_request(
      R"({"schema_version":1,"op":"trace","filter":"abc","last":5,)"
      R"("trace_id":"t9"})",
      &req, &error))
      << error;
  EXPECT_EQ(req.op, "trace");
  EXPECT_EQ(req.filter, "abc");
  EXPECT_EQ(req.last, 5);
  EXPECT_EQ(req.trace_id, "t9");
  EXPECT_FALSE(serve::parse_request(
      R"({"schema_version":1,"op":"metrics","format":"xml"})", &req, &error));
  EXPECT_FALSE(serve::parse_request(
      R"({"schema_version":1,"op":"trace","last":-1})", &req, &error));
}

// ---- daemon end to end ----

namespace {

struct RunningServer {
  serve::Server server;
  std::thread thread;
  explicit RunningServer(serve::ServerOptions options)
      : server(std::move(options)) {
    thread = std::thread([this] { server.run(); });
  }
  ~RunningServer() {
    server.stop();
    thread.join();
  }
};

std::string bm_request(const std::string& id, const char* bms) {
  bb::util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", serve::kProtocolVersion);
  w.member("id", id);
  w.member("op", "synthesize_bm");
  w.member("bms", bms);
  w.end_object();
  return w.str();
}

/// A full-flow synthesize request with an explicit trace context and the
/// cache disabled, so every run exercises the parallel controller stage.
std::string traced_design_request(const std::string& id,
                                  const std::string& trace_id) {
  bb::util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", serve::kProtocolVersion);
  w.member("id", id);
  w.member("trace_id", trace_id);
  w.member("op", "synthesize");
  w.member("design", "systolic");
  w.key("options").begin_object();
  w.member("cache", false);
  w.member("jobs", 2);
  w.end_object();
  w.end_object();
  return w.str();
}

std::size_t count_occurrences(std::string_view text, std::string_view needle) {
  std::size_t n = 0;
  for (std::size_t at = text.find(needle); at != std::string_view::npos;
       at = text.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

}  // namespace

TEST(Server, AnswersOverSocketAndPersistsAcrossRestarts) {
  TempDir dir("e2e");
  const std::string socket_path = (dir.path / "bb.sock").string();
  serve::ServerOptions options;
  options.socket_path = socket_path;
  options.jobs = 2;
  options.cache_dir = (dir.path / "cache").string();
  {
    RunningServer running(options);
    serve::Client client(socket_path);
    // Liveness and a bad request on the same connection.
    auto doc = util::parse_json(client.roundtrip(
        R"({"schema_version":1,"op":"ping"})", 10000));
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->get_string("status"), "ok");
    doc = util::parse_json(client.roundtrip("this is not json", 10000));
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->get_string("status"), "bad_request");
    // First synthesis misses every tier.
    doc = util::parse_json(
        client.roundtrip(bm_request("r1", kWireBms), 60000));
    ASSERT_TRUE(doc.has_value());
    ASSERT_EQ(doc->get_string("status"), "ok");
    const util::JsonValue* result = doc->get("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->get_string("cache"), "miss");
    EXPECT_NE(result->get_string("sol").find(".fn"), std::string::npos);
    // Structured errors carry stage and rule.
    doc = util::parse_json(client.roundtrip(
        R"({"schema_version":1,"id":"bad","op":"synthesize_bm",)"
        R"("bms":"name x\n0 1 bogus | a+\n"})",
        60000));
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->get_string("status"), "error");
    ASSERT_NE(doc->get("error"), nullptr);
    EXPECT_EQ(doc->get("error")->get_string("stage"), "parse");
  }
  // A new daemon on the same cache directory serves the disk tier.
  {
    RunningServer running(options);
    serve::Client client(socket_path);
    const auto doc = util::parse_json(
        client.roundtrip(bm_request("r2", kWireBms), 60000));
    ASSERT_TRUE(doc.has_value());
    ASSERT_EQ(doc->get_string("status"), "ok");
    EXPECT_EQ(doc->get("result")->get_string("cache"), "disk-hit");
    // The stats op reports the tiered counters.
    const auto stats = util::parse_json(client.roundtrip(
        R"({"schema_version":1,"op":"stats"})", 10000));
    ASSERT_TRUE(stats.has_value());
    const util::JsonValue* cache = stats->get("stats")->get("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->get_int("disk_hits", -1), 1);
  }
}

TEST(Server, AnalyzeOpReportsLintAndSarif) {
  TempDir dir("analyze");
  serve::ServerOptions options;
  options.socket_path = (dir.path / "bb.sock").string();
  RunningServer running(options);
  serve::Client client(options.socket_path);

  bb::util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", serve::kProtocolVersion);
  w.member("id", "a1");
  w.member("op", "analyze");
  w.member("source",
           "procedure tick (sync t) is begin loop sync t end end");
  w.key("options").begin_object();
  w.member("sarif", true);
  w.end_object();
  w.end_object();

  const auto doc = util::parse_json(client.roundtrip(w.str(), 60000));
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->get_string("status"), "ok");
  const util::JsonValue* result = doc->get("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->get_int("errors", -1), 0);
  EXPECT_EQ(result->get_int("warnings", -1), 0);
  const util::JsonValue* lint = result->get("lint");
  ASSERT_NE(lint, nullptr);
  EXPECT_EQ(lint->get_int("schema_version", -1), 1);
  EXPECT_NE(result->get_string("sarif").find("\"2.1.0\""),
            std::string::npos);
}

TEST(Server, ShedsLoadWhenAdmissionIsFull) {
  TempDir dir("shed");
  serve::ServerOptions options;
  options.socket_path = (dir.path / "bb.sock").string();
  options.max_inflight = 0;  // everything sheds, deterministically
  RunningServer running(options);
  serve::Client client(options.socket_path);
  const auto doc = util::parse_json(
      client.roundtrip(bm_request("r1", kWireBms), 10000));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("status"), "overloaded");
  EXPECT_EQ(running.server.stats().overloaded, 1u);
}

TEST(Server, ShutdownOpDrainsAndExits) {
  TempDir dir("shutdown");
  serve::ServerOptions options;
  options.socket_path = (dir.path / "bb.sock").string();
  serve::Server server(options);
  std::thread thread([&server] { server.run(); });
  {
    serve::Client client(options.socket_path);
    const auto doc = util::parse_json(client.roundtrip(
        R"({"schema_version":1,"op":"shutdown"})", 10000));
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->get_string("status"), "ok");
  }
  thread.join();  // run() must return on its own
  EXPECT_TRUE(server.stopping());
}

TEST(Server, DuplicateRequestIdsAreAnsweredFromTheDedupeTable) {
  TempDir dir("dedupe");
  serve::ServerOptions options;
  options.socket_path = (dir.path / "bb.sock").string();
  options.cache_dir = (dir.path / "cache").string();
  RunningServer running(options);
  serve::Client client(options.socket_path);
  const std::string line = bm_request("retry-1", kWireBms);
  // A retrying client resends the same id after losing the first reply;
  // the server must hand back the recorded reply, byte for byte, so the
  // client cannot observe two different answers for one request.
  const std::string first = client.roundtrip(line, 60000);
  const std::string second = client.roundtrip(line, 60000);
  EXPECT_EQ(first, second);
  EXPECT_GE(running.server.stats().deduped, 1u);
  const auto doc = util::parse_json(second);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("status"), "ok");
}

TEST(Server, IdempotentRetryHelperSurvivesConnectionLoss) {
  TempDir dir("retry");
  serve::ServerOptions options;
  options.socket_path = (dir.path / "bb.sock").string();
  options.cache_dir = (dir.path / "cache").string();
  RunningServer running(options);
  serve::RetryOptions retry;
  retry.attempts = 3;
  retry.timeout_ms = 60000;
  retry.backoff_ms = 10;
  serve::RetryStats stats;
  const std::string reply = serve::Client::request_idempotent(
      options.socket_path, bm_request("retry-helper", kWireBms), retry,
      &stats);
  const auto doc = util::parse_json(reply);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("status"), "ok");
  EXPECT_GE(stats.attempts, 1);
}

TEST(Server, SlowTrickleConnectionsGetAStructuredTimeout) {
  TempDir dir("trickle");
  serve::ServerOptions options;
  options.socket_path = (dir.path / "bb.sock").string();
  options.line_timeout_ms = 200;  // short so the test stays fast
  RunningServer running(options);
  // A raw socket that sends half a request and then stalls forever.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                options.socket_path.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char partial[] = "{\"schema_version\":1,\"op\":";
  ASSERT_EQ(::send(fd, partial, sizeof(partial) - 1, 0),
            static_cast<ssize_t>(sizeof(partial) - 1));
  // The server must answer with a structured error instead of holding
  // the connection (and its buffer) hostage indefinitely.
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
    if (reply.find('\n') != std::string::npos) break;
  }
  ::close(fd);
  const auto doc = util::parse_json(reply);
  ASSERT_TRUE(doc.has_value()) << "reply was: " << reply;
  EXPECT_EQ(doc->get_string("status"), "bad_request");
  EXPECT_EQ(running.server.stats().line_timeouts, 1u);
}

// ---- live telemetry ----

TEST(Server, TraceIdsAreEchoedOrMinted) {
  TempDir dir("traceid");
  serve::ServerOptions options;
  options.socket_path = (dir.path / "bb.sock").string();
  RunningServer running(options);
  serve::Client client(options.socket_path);
  // A client-supplied trace context rides the envelope back unchanged.
  auto doc = util::parse_json(client.roundtrip(
      R"({"schema_version":1,"op":"ping","trace_id":"cli-7"})", 10000));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("status"), "ok");
  EXPECT_EQ(doc->get_string("trace_id"), "cli-7");
  // Without one, the server mints a srv-<seq> id so the request is still
  // traceable after the fact.
  doc = util::parse_json(client.roundtrip(
      R"({"schema_version":1,"op":"ping"})", 10000));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("trace_id").rfind("srv-", 0), 0u)
      << doc->get_string("trace_id");
}

TEST(Server, MetricsOpServesJsonAndPrometheusWithoutRestart) {
  TempDir dir("metrics");
  serve::ServerOptions options;
  options.socket_path = (dir.path / "bb.sock").string();
  RunningServer running(options);
  serve::Client client(options.socket_path);
  ASSERT_NE(client.roundtrip(bm_request("m1", kWireBms), 60000), "");

  // Default format: the deterministic JSON snapshot, with the per-op
  // latency histogram for the op we just ran.
  auto doc = util::parse_json(client.roundtrip(
      R"({"schema_version":1,"op":"metrics"})", 10000));
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->get_string("status"), "ok");
  const util::JsonValue* metrics = doc->get("metrics");
  ASSERT_NE(metrics, nullptr);
  const util::JsonValue* counters = metrics->get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->get_int("serve.requests", 0), 1);
  const util::JsonValue* histograms = metrics->get("histograms");
  ASSERT_NE(histograms, nullptr);
  const util::JsonValue* h = histograms->get("serve.op.synthesize_bm.us");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->get_int("count", 0), 1);
  EXPECT_NE(h->get("p50"), nullptr);
  EXPECT_NE(h->get("p99"), nullptr);

  // Prometheus exposition on the same live server, no restart.
  doc = util::parse_json(client.roundtrip(
      R"({"schema_version":1,"op":"metrics","format":"prometheus"})", 10000));
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->get_string("status"), "ok");
  EXPECT_EQ(doc->get("metrics"), nullptr)
      << "prometheus-only replies omit the JSON snapshot";
  const std::string text = doc->get_string("prometheus");
  EXPECT_NE(text.find("# TYPE bb_serve_requests counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("bb_serve_op_synthesize_bm_us_bucket{le=\"+Inf\"}"),
            std::string::npos);

  // "both" carries the two renderings of one snapshot.
  doc = util::parse_json(client.roundtrip(
      R"({"schema_version":1,"op":"metrics","format":"both"})", 10000));
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->get_string("status"), "ok");
  EXPECT_NE(doc->get("metrics"), nullptr);
  EXPECT_FALSE(doc->get_string("prometheus").empty());
}

TEST(Server, TraceContextPropagatesThroughThePoolWithoutBleed) {
  TempDir dir("tracectx");
  serve::ServerOptions options;
  options.socket_path = (dir.path / "bb.sock").string();
  options.jobs = 2;
  RunningServer running(options);

  // Two concurrent full-flow requests with distinct trace contexts and
  // the cache off: their controller units interleave on the same worker
  // pool, so any ambient-context leak shows up as a span tagged with the
  // other request's id.
  std::vector<std::thread> clients;
  for (const char* ctx : {"ctx-a", "ctx-b"}) {
    clients.emplace_back([&options, ctx] {
      serve::Client client(options.socket_path);
      const auto doc = util::parse_json(client.roundtrip(
          traced_design_request(std::string("req-") + ctx, ctx), 120000));
      ASSERT_TRUE(doc.has_value());
      EXPECT_EQ(doc->get_string("status"), "ok");
      EXPECT_EQ(doc->get_string("trace_id"), ctx);
    });
  }
  for (std::thread& t : clients) t.join();

  serve::Client client(options.socket_path);
  for (const char* ctx : {"ctx-a", "ctx-b"}) {
    const char* other = ctx[4] == 'a' ? "ctx-b" : "ctx-a";
    const std::string reply = client.roundtrip(
        std::string(R"({"schema_version":1,"op":"trace","filter":")") + ctx +
            R"("})",
        10000);
    const auto doc = util::parse_json(reply);
    ASSERT_TRUE(doc.has_value());
    ASSERT_EQ(doc->get_string("status"), "ok");
    // The request span plus the flow stages it fanned out, all tagged
    // with this request's context...
    EXPECT_GE(count_occurrences(
                  reply, std::string("\"trace_id\":\"") + ctx + "\""),
              2u)
        << reply;
    EXPECT_EQ(count_occurrences(reply, "\"name\":\"serve.request\""), 1u);
    EXPECT_GE(count_occurrences(reply, "\"name\":\"flow.controller\""), 1u)
        << "pool-side controller spans must inherit the request context";
    // ...and none of the sibling's.
    EXPECT_EQ(count_occurrences(
                  reply, std::string("\"trace_id\":\"") + other + "\""),
              0u)
        << "cross-request trace bleed through the thread pool";
  }
}

TEST(Server, EventLogRecordsCompletionsAndSlowExemplars) {
  TempDir dir("eventlog");
  serve::ServerOptions options;
  options.socket_path = (dir.path / "bb.sock").string();
  options.log_path = (dir.path / "events.jsonl").string();
  options.slow_ms = 0;  // every request is a slow exemplar
  RunningServer running(options);
  serve::Client client(options.socket_path);
  auto doc = util::parse_json(client.roundtrip(
      R"({"schema_version":1,"op":"ping","trace_id":"ev-1"})", 10000));
  ASSERT_TRUE(doc.has_value());
  const std::string reply =
      client.roundtrip(bm_request("ev-synth", kWireBms), 60000);
  ASSERT_EQ(util::parse_json(reply)->get_string("status"), "ok");

  // Records are appended before the reply is written, so both requests
  // are on disk by now.
  std::ifstream in(options.log_path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t records = 0;
  bool saw_ping = false, saw_synth = false;
  while (std::getline(in, line)) {
    ++records;
    const auto rec = util::parse_json(line);
    ASSERT_TRUE(rec.has_value()) << "unparseable record: " << line;
    EXPECT_GT(rec->get_int("ts_ms", 0), 0);
    EXPECT_EQ(rec->get_string("outcome"), "ok");
    if (rec->get_string("trace_id") == "ev-1") {
      saw_ping = true;
      EXPECT_EQ(rec->get_string("op"), "ping");
    }
    if (rec->get_string("op") == "synthesize_bm") {
      saw_synth = true;
      EXPECT_EQ(rec->get_string("id"), "ev-synth");
      EXPECT_EQ(rec->get_string("cache"), "miss");
      EXPECT_GE(rec->get_int("duration_us", -1), 0);
      // slow_ms=0 marks it slow and attaches the request's spans.
      EXPECT_TRUE(rec->get_bool("slow", false)) << line;
      EXPECT_NE(rec->get("spans"), nullptr) << line;
    }
  }
  EXPECT_GE(records, 2u);
  EXPECT_TRUE(saw_ping);
  EXPECT_TRUE(saw_synth);
}

TEST(Client, ReplyDeadlineThrowsADistinctTimeoutType) {
  TempDir dir("timeout");
  const std::string socket_path = (dir.path / "mute.sock").string();
  // A listener that accepts the connection into its backlog and never
  // answers: the send succeeds, the reply deadline passes.
  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path.c_str());
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 4), 0);

  serve::Client client(socket_path);
  bool caught_timeout = false;
  try {
    client.roundtrip(R"({"schema_version":1,"op":"ping"})", 200);
  } catch (const serve::ClientTimeout& e) {
    caught_timeout = true;
    // Still a runtime_error, so existing catch-all callers keep working.
    EXPECT_NE(static_cast<const std::runtime_error*>(&e), nullptr);
  }
  EXPECT_TRUE(caught_timeout);
  ::close(lfd);
}
