// Fixed differential-fuzz campaign for CI (see src/fuzz/campaign.hpp).
//
// Runs a small seeded campaign over both generator modes with both
// oracles, prints the summary, and dumps the campaign JSON to argv[1]
// (default bench_fuzz.json) — CI uploads that file as an artifact.
// The JSON carries no wall-clock content, so two runs with the same
// seed (--seed N or BB_SEED) are byte-identical.
//
// Exit status: 0 when the campaign ran to completion with no
// discrepancy, 1 when any oracle disagreed (the dumped JSON then holds
// the minimized counterexamples), 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/fuzz/campaign.hpp"
#include "src/obs/session.hpp"
#include "src/util/io.hpp"

int main(int argc, char** argv) {
  std::string json_path = "bench_fuzz.json";
  bb::fuzz::FuzzOptions options;
  options.count = 40;
  options.size = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--count" && i + 1 < argc) {
      options.count = std::atoi(argv[++i]);
    } else if (arg == "--time-budget-ms" && i + 1 < argc) {
      options.time_budget_ms = std::atoll(argv[++i]);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "usage: bench_fuzz [out.json] [--seed N] [--count N]"
                   " [--time-budget-ms N]\n";
      return 2;
    } else {
      json_path = arg;
    }
  }
  bb::obs::Session session(bb::obs::env_or("", "BB_TRACE"),
                           bb::obs::env_or("", "BB_METRICS"));

  const auto result = bb::fuzz::run_fuzz_campaign(options);

  std::cout << result.to_text();
  bb::util::write_file_atomic(json_path, result.to_json() + "\n");
  std::printf("wrote %s\n", json_path.c_str());

  if (result.discrepancies > 0) {
    std::cerr << "bench_fuzz: " << result.discrepancies
              << " discrepancy(ies) — optimized and baseline flows"
                 " disagree\n";
    return 1;
  }
  return 0;
}
