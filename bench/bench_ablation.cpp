// Ablation studies on the design decisions DESIGN.md calls out:
//   1. Minimalist mode: speed (single-output, minimal product count) vs
//      area (minimal literals) — explains part of Table 3's area overhead.
//   2. Technology mapping: level-separated (the paper's per-module DC
//      runs) vs whole-cone — the Section 5/6 area discussion.
//   3. Cluster state budget: how max_states bounds controller growth
//      (Section 4.4's "restrictions determine how many components can be
//      clustered together").
//   4. The Burst-Mode-aware gate (Table 1): admitting illegal operator
//      combinations produces expansions that fail BM validation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/balsa/compile.hpp"
#include "src/bm/compile.hpp"
#include "src/bm/validate.hpp"
#include "src/ch/parser.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/benchmarks.hpp"
#include "src/hsnet/to_ch.hpp"
#include "src/opt/cluster.hpp"

namespace {

void ablation_synth_mode_and_mapping() {
  std::printf("--- Ablation 1+2: Minimalist mode x mapping style "
              "(systolic counter, clustered)\n");
  std::printf("%-28s %12s %12s %12s\n", "configuration", "time(ns)",
              "ctl area", "improvement vs unopt");
  const auto base =
      bb::flow::run_benchmark("systolic", bb::flow::FlowOptions::unoptimized());
  struct Config {
    const char* name;
    bb::minimalist::SynthMode mode;
    bool level_separated;
  };
  const Config configs[] = {
      {"speed + level-separated", bb::minimalist::SynthMode::kSpeed, true},
      {"speed + whole-cone", bb::minimalist::SynthMode::kSpeed, false},
      {"area  + level-separated", bb::minimalist::SynthMode::kArea, true},
      {"area  + whole-cone", bb::minimalist::SynthMode::kArea, false},
  };
  for (const Config& c : configs) {
    bb::flow::FlowOptions options = bb::flow::FlowOptions::optimized();
    options.mode = c.mode;
    options.level_separated = c.level_separated;
    const auto r = bb::flow::run_benchmark("systolic", options);
    std::printf("%-28s %12.2f %12.0f %11.2f%%\n", c.name, r.time_ns,
                r.control_area,
                100.0 * (base.time_ns - r.time_ns) / base.time_ns);
  }
  std::printf("(baseline: %.2f ns, %.0f area)\n\n", base.time_ns,
              base.control_area);
}

void ablation_state_budget() {
  std::printf("--- Ablation 3: cluster state budget (stack design)\n");
  std::printf("%-12s %12s %12s %12s\n", "max_states", "controllers",
              "time(ns)", "ctl area");
  for (const int cap : {8, 16, 24, 40, 64}) {
    bb::flow::FlowOptions options = bb::flow::FlowOptions::optimized();
    options.max_states = cap;
    const auto r = bb::flow::run_benchmark("stack", options);
    std::printf("%-12d %12d %12.2f %12.0f%s\n", cap, r.controllers,
                r.time_ns, r.control_area, r.ok ? "" : "  (FAILED)");
  }
  std::printf("\n");
}

void ablation_bm_aware_gate() {
  std::printf("--- Ablation 4: dropping the Burst-Mode-aware gate "
              "(Table 1)\n");
  // Illegal combinations, expanded with best-guess interleavings, must be
  // caught by BM validation downstream.
  const char* illegal[] = {
      "(rep (enc-early (p-to-p active A) (p-to-p passive B)))",
      "(rep (seq (p-to-p active A) (p-to-p passive B)))",
      "(mutex (p-to-p active A) (p-to-p active B))",
  };
  for (const char* src : illegal) {
    bb::ch::ExpandOptions options;
    options.allow_illegal = true;
    std::string verdict;
    try {
      const auto expansion = bb::ch::expand(*bb::ch::parse(src), options);
      const auto spec = bb::bm::compile_items(expansion.flatten(), "x");
      const auto check = bb::bm::validate(spec);
      verdict = check.ok ? "UNEXPECTEDLY VALID"
                         : "rejected by validation: " + check.errors[0];
    } catch (const std::exception& e) {
      verdict = std::string("rejected: ") + e.what();
    }
    std::printf("  %-55s -> %s\n", src, verdict.c_str());
  }
  std::printf("\n");
}

void BM_ClusterStack(benchmark::State& state) {
  const auto net = bb::balsa::compile_source(bb::designs::stack().source);
  auto programs = bb::hsnet::control_programs(net);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<bb::ch::Program> copy;
    for (const auto& p : programs) copy.push_back(p.clone());
    state.ResumeTiming();
    benchmark::DoNotOptimize(bb::opt::optimize(std::move(copy)));
  }
}
BENCHMARK(BM_ClusterStack)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ablation_synth_mode_and_mapping();
  ablation_state_budget();
  ablation_bm_aware_gate();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
