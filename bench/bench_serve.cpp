// Service-tier load generator: replays the four evaluation designs
// against an in-process bb-served instance over its real Unix-domain
// socket, cold (fresh cache directory) and then warm (a NEW server on
// the SAME directory, so every warm hit is served by the persistent
// disk tier or by memory entries promoted from it).
//
// Emits a JSON artifact with per-phase throughput, latency percentiles
// and tiered cache hit rates; the warm phase must show a higher hit
// rate and a lower median latency than the cold phase.
//
//   bench_serve [out.json] [--clients N] [--repeat N]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/designs/designs.hpp"
#include "src/obs/metrics.hpp"
#include "src/serve/client.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/server.hpp"
#include "src/util/io.hpp"
#include "src/util/json.hpp"
#include "src/util/json_parse.hpp"
#include "src/util/strings.hpp"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(rank + 0.5)];
}

struct PhaseResult {
  std::string name;
  std::size_t requests = 0;
  std::size_t errors = 0;
  double wall_ms = 0.0;
  std::vector<double> latencies_ms;  ///< sorted after the run
  bb::minimalist::SynthCache::Stats cache;
  bb::serve::DiskCacheStats disk;
  /// Server-side per-op latency: the "histograms" member of the live
  /// `metrics` op reply, scraped before the phase's server stops.  The
  /// registry is reset at phase start, so these are phase-scoped.
  bb::util::JsonValue op_histograms;

  double hit_rate() const {
    const auto answered = cache.hits + cache.disk_hits + cache.misses;
    return answered == 0 ? 0.0
                         : static_cast<double>(cache.hits + cache.disk_hits) /
                               static_cast<double>(answered);
  }
};

std::string synthesize_request(const std::string& id,
                               const std::string& design) {
  bb::util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", bb::serve::kProtocolVersion);
  w.member("id", id);
  w.member("op", "synthesize");
  w.member("design", design);
  w.end_object();
  return w.str();
}

/// One phase: a fresh server on `cache_dir`, `clients` concurrent
/// connections replaying designs x repeat requests.
PhaseResult run_phase(const std::string& name, const std::string& socket_path,
                      const std::string& cache_dir,
                      const std::vector<std::string>& designs, int clients,
                      int repeat) {
  // Phase-scoped metrics: the registry is process-global, so zero it
  // here and scrape it through the live `metrics` op before the server
  // stops (instrument references stay valid across reset()).
  bb::obs::Registry::global().reset();
  bb::serve::ServerOptions options;
  options.socket_path = socket_path;
  options.cache_dir = cache_dir;
  bb::serve::Server server(std::move(options));
  std::thread server_thread([&server] { server.run(); });

  std::vector<std::string> requests;
  for (int r = 0; r < repeat; ++r) {
    for (const std::string& design : designs) {
      requests.push_back(synthesize_request(
          name + "-" + std::to_string(requests.size()), design));
    }
  }

  PhaseResult result;
  result.name = name;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> errors{0};
  std::mutex lat_mu;
  std::vector<double> latencies;

  const auto phase_start = Clock::now();
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&] {
      bb::serve::Client client(socket_path);
      for (std::size_t i = next.fetch_add(1); i < requests.size();
           i = next.fetch_add(1)) {
        const auto start = Clock::now();
        const std::string reply = client.roundtrip(requests[i], 600000);
        const double ms = ms_between(start, Clock::now());
        const auto doc = bb::util::parse_json(reply);
        if (!doc || doc->get_string("status") != "ok") {
          errors.fetch_add(1);
        }
        std::lock_guard<std::mutex> lock(lat_mu);
        latencies.push_back(ms);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  result.wall_ms = ms_between(phase_start, Clock::now());
  result.requests = requests.size();
  result.errors = errors.load();
  result.cache = server.cache().stats();
  if (server.disk_cache() != nullptr) result.disk = server.disk_cache()->stats();

  {
    bb::util::JsonWriter mw;
    mw.begin_object();
    mw.member("schema_version", bb::serve::kProtocolVersion);
    mw.member("op", "metrics");
    mw.end_object();
    bb::serve::Client scraper(socket_path);
    const auto doc =
        bb::util::parse_json(scraper.roundtrip(mw.str(), 600000));
    if (doc && doc->get_string("status") == "ok") {
      if (const bb::util::JsonValue* metrics = doc->get("metrics")) {
        if (const bb::util::JsonValue* h = metrics->get("histograms")) {
          result.op_histograms = *h;
        }
      }
    }
  }

  server.stop();
  server_thread.join();

  std::sort(latencies.begin(), latencies.end());
  result.latencies_ms = std::move(latencies);
  return result;
}

void emit_phase(bb::util::JsonWriter& w, const PhaseResult& r) {
  w.begin_object();
  w.member("name", r.name);
  w.member("requests", static_cast<std::uint64_t>(r.requests));
  w.member("errors", static_cast<std::uint64_t>(r.errors));
  w.member("wall_ms", r.wall_ms);
  w.member("throughput_rps",
           r.wall_ms > 0.0 ? static_cast<double>(r.requests) /
                                 (r.wall_ms / 1000.0)
                           : 0.0);
  w.key("latency_ms").begin_object();
  double sum = 0.0;
  for (const double v : r.latencies_ms) sum += v;
  w.member("mean", r.latencies_ms.empty()
                       ? 0.0
                       : sum / static_cast<double>(r.latencies_ms.size()));
  w.member("p50", percentile(r.latencies_ms, 50));
  w.member("p90", percentile(r.latencies_ms, 90));
  w.member("p99", percentile(r.latencies_ms, 99));
  w.member("max", r.latencies_ms.empty() ? 0.0 : r.latencies_ms.back());
  w.end_object();
  w.key("cache").begin_object();
  w.member("hits", r.cache.hits);
  w.member("disk_hits", r.cache.disk_hits);
  w.member("misses", r.cache.misses);
  w.member("hit_rate", r.hit_rate());
  w.end_object();
  w.key("disk_cache").begin_object();
  w.member("hits", r.disk.hits);
  w.member("misses", r.disk.misses);
  w.member("stores", r.disk.stores);
  w.member("evictions", r.disk.evictions);
  w.end_object();
  // Server-side per-op quantiles from the live serve.op.<name>.us
  // histograms (includes queue time; the client-side latency_ms above
  // additionally includes socket round-trip).
  w.key("op_latency_us").begin_object();
  for (const auto& [name, h] : r.op_histograms.object) {
    constexpr const char* kPrefix = "serve.op.";
    if (name.rfind(kPrefix, 0) != 0) continue;
    std::string op = name.substr(9);
    if (op.size() > 3 && op.compare(op.size() - 3, 3, ".us") == 0) {
      op.resize(op.size() - 3);
    }
    w.key(op).begin_object();
    w.member("count", static_cast<std::uint64_t>(h.get_int("count", 0)));
    const bb::util::JsonValue* p50 = h.get("p50");
    const bb::util::JsonValue* p99 = h.get("p99");
    w.member("p50", p50 != nullptr ? p50->number : 0.0);
    w.member("p99", p99 != nullptr ? p99->number : 0.0);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "bench_serve.json";
  int clients = 4;
  int repeat = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--clients" && i + 1 < argc) {
      clients = static_cast<int>(
          bb::util::parse_int("bench_serve", "--clients", argv[++i], 1, 256));
    } else if (arg == "--repeat" && i + 1 < argc) {
      repeat = static_cast<int>(
          bb::util::parse_int("bench_serve", "--repeat", argv[++i], 1, 1000));
    } else {
      out_path = arg;
    }
  }

  const fs::path work =
      fs::temp_directory_path() /
      ("bb_bench_serve_" + std::to_string(::getpid()));
  fs::remove_all(work);
  fs::create_directories(work);
  const std::string socket_path = (work / "bb.sock").string();
  const std::string cache_dir = (work / "cache").string();

  std::vector<std::string> designs;
  for (const auto* d : bb::designs::all_designs()) designs.push_back(d->name);

  std::vector<PhaseResult> phases;
  // Cold: empty cache directory, every first-seen controller misses.
  // Warm: a brand-new server (fresh memory tier) on the now-populated
  // directory — its hits come through the persistent disk tier.
  phases.push_back(run_phase("cold", socket_path, cache_dir, designs,
                             clients, repeat));
  phases.push_back(run_phase("warm", socket_path, cache_dir, designs,
                             clients, repeat));

  bb::util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", 1);
  w.member("clients", clients);
  w.member("repeat", repeat);
  w.key("designs").begin_array();
  for (const auto& d : designs) w.value(d);
  w.end_array();
  w.key("phases").begin_array();
  for (const PhaseResult& r : phases) emit_phase(w, r);
  w.end_array();
  w.end_object();

  bb::util::write_file_atomic(out_path, w.str() + "\n");

  for (const PhaseResult& r : phases) {
    std::printf("%-5s %3zu requests  %8.1f ms wall  p50 %8.2f ms  "
                "hit rate %5.1f%%  (%llu mem + %llu disk hits, %llu misses)\n",
                r.name.c_str(), r.requests, r.wall_ms,
                percentile(r.latencies_ms, 50), 100.0 * r.hit_rate(),
                static_cast<unsigned long long>(r.cache.hits),
                static_cast<unsigned long long>(r.cache.disk_hits),
                static_cast<unsigned long long>(r.cache.misses));
  }
  const bool warm_better =
      phases[1].hit_rate() > phases[0].hit_rate() &&
      percentile(phases[1].latencies_ms, 50) <
          percentile(phases[0].latencies_ms, 50);
  std::printf("warm phase %s cold (artifact: %s)\n",
              warm_better ? "beats" : "does NOT beat", out_path.c_str());

  std::error_code ec;
  fs::remove_all(work, ec);
  return phases[0].errors + phases[1].errors == 0 && warm_better ? 0 : 1;
}
