// Fig. 5: Call Distribution on the Section 4.2 example — a sequencer
// whose two branches activate a 2-way call (taken from the systolic
// counter).  Prints the split into call fragments and the merged 6-state
// controller of the figure.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/bm/compile.hpp"
#include "src/bm/validate.hpp"
#include "src/ch/parser.hpp"
#include "src/ch/printer.hpp"
#include "src/opt/cluster.hpp"

namespace {

std::vector<bb::ch::Program> example_programs() {
  std::vector<bb::ch::Program> programs;
  programs.emplace_back(
      "SEQ", bb::ch::parse("(rep (enc-early (p-to-p passive a)"
                           " (seq (p-to-p active b1) (p-to-p active b2))))"));
  programs.emplace_back(
      "CALL",
      bb::ch::parse("(rep (mutex"
                    " (enc-early (p-to-p passive b1) (p-to-p active c))"
                    " (enc-early (p-to-p passive b2) (p-to-p active c))))"));
  return programs;
}

void print_fig5() {
  std::printf("Fig. 5: Call Distribution (sequencer + 2-way call)\n\n");
  auto programs = example_programs();
  for (const auto& p : programs) {
    std::printf("%s: %s\n", p.name.c_str(),
                bb::ch::to_string(*p.body).c_str());
  }

  bb::opt::ClusterStats stats;
  const auto clustered =
      bb::opt::t2_clustering(bb::opt::wrap(std::move(programs)), {}, &stats);
  std::printf("\nOptimization log:\n");
  for (const auto& line : stats.log) std::printf("  %s\n", line.c_str());

  std::printf("\nResult: %zu controller(s)\n", clustered.size());
  for (const auto& c : clustered) {
    std::printf("%s\n", bb::ch::to_pretty_string(*c.program.body).c_str());
    const auto spec = bb::bm::compile(*c.program.body, "result");
    const auto check = bb::bm::validate(spec);
    std::printf("states: %d (paper Fig. 5: 6), valid: %s\n%s\n",
                spec.num_states, check.ok ? "yes" : "NO",
                spec.to_bms().c_str());
  }
}

void BM_CallDistribution(benchmark::State& state) {
  for (auto _ : state) {
    auto programs = example_programs();
    benchmark::DoNotOptimize(
        bb::opt::t2_clustering(bb::opt::wrap(std::move(programs))));
  }
}
BENCHMARK(BM_CallDistribution);

}  // namespace

int main(int argc, char** argv) {
  print_fig5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
