// Fault-injection campaign over the four evaluation designs (see
// src/flow/faultsim.hpp for the fault model and classification).
//
// Prints the per-design detected/tolerated summary and dumps the
// deterministic campaign JSON to argv[1] (default bench_faults.json) —
// CI uploads that file as an artifact.  The JSON carries no wall-clock
// content, so two runs with the same seed (--seed N or BB_SEED) are
// byte-identical.
//
// Exit status: 0 when every design's healthy baseline passed and at
// least one stuck-at fault per design was caught by the trace verifier
// (the campaign's own sanity floor), 1 otherwise.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/flow/faultsim.hpp"
#include "src/obs/session.hpp"
#include "src/util/io.hpp"

int main(int argc, char** argv) {
  std::string json_path = "bench_faults.json";
  bb::flow::CampaignOptions campaign;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      campaign.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "usage: bench_faults [out.json] [--seed N]\n";
      return 2;
    } else {
      json_path = arg;
    }
  }
  bb::obs::Session session(bb::obs::env_or("", "BB_TRACE"),
                           bb::obs::env_or("", "BB_METRICS"));

  const std::vector<std::string> designs{"systolic", "wagging", "stack",
                                         "ssem"};
  const auto result = bb::flow::run_fault_campaign(
      designs, bb::flow::FlowOptions::optimized(), campaign);

  std::cout << result.to_text();
  bb::util::write_file_atomic(json_path, result.to_json() + "\n");
  std::printf("wrote %s\n", json_path.c_str());

  bool ok = true;
  for (const auto& d : result.designs) {
    if (!d.baseline_ok) {
      std::cerr << "bench_faults: " << d.design
                << ": healthy baseline failed\n";
      ok = false;
    }
    bool trace_hit = false;
    for (const auto& run : d.runs) {
      if (run.outcome == bb::flow::FaultOutcome::kTraceCounterexample &&
          run.kind.rfind("stuck-at", 0) == 0) {
        trace_hit = true;
        break;
      }
    }
    if (!trace_hit) {
      std::cerr << "bench_faults: " << d.design
                << ": no stuck-at fault was caught by the trace verifier\n";
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
