// Flow-performance benchmark: serial vs parallel controller synthesis
// and cold vs warm synthesis cache, over the four evaluation designs.
//
// For every design the control partition is synthesized four ways:
//   serial    jobs=1, cache off      (the pre-parallel baseline)
//   parallel  jobs=auto, cache off   (thread-pool speedup only)
//   cold      jobs=auto, fresh cache (first run, all misses)
//   warm      jobs=auto, same cache  (memoized re-run, as the Table 3
//                                     comparison re-synthesizes designs)
// and the run cross-checks that all four produce byte-identical reports
// and gate netlists (the parallel flow's determinism contract).
//
// Results are printed as a table and dumped as JSON (stage timings
// included) to the path given as argv[1], default bench_flowperf.json —
// CI uploads that file as an artifact.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/balsa/compile.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/flow.hpp"
#include "src/minimalist/cache.hpp"
#include "src/netlist/verilog.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/session.hpp"
#include "src/util/io.hpp"
#include "src/util/json.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string fmt(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

struct Run {
  double ms = 0.0;
  std::string fingerprint;  ///< report + verilog, for identity checks
  bb::flow::StageTimings timings;
};

Run run_flow(const bb::hsnet::Netlist& net, int jobs, bool cache,
             bb::minimalist::SynthCache* cache_instance) {
  bb::flow::FlowOptions options = bb::flow::FlowOptions::optimized();
  options.jobs = jobs;
  options.cache = cache;
  options.cache_instance = cache_instance;
  const auto start = Clock::now();
  const auto result = bb::flow::synthesize_control(net, options);
  Run run;
  run.ms = ms_since(start);
  run.fingerprint =
      bb::flow::report(result) + bb::netlist::to_verilog(result.gates);
  run.timings = result.timings;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "bench_flowperf.json";
  // Tracing/metrics are opt-in via environment (CI sets BB_TRACE so the
  // bench doubles as the trace-artifact producer).
  bb::obs::Session session(bb::obs::env_or("", "BB_TRACE"),
                           bb::obs::env_or("", "BB_METRICS"));
  const int auto_jobs = bb::flow::effective_jobs(bb::flow::FlowOptions{});
  bool all_identical = true;

  bb::util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", bb::obs::kSchemaVersion);
  w.member("jobs", auto_jobs);
  w.key("designs").begin_array();
  for (const auto* design : bb::designs::all_designs()) {
    const auto net = bb::balsa::compile_source(design->source);

    const Run serial = run_flow(net, 1, false, nullptr);
    const Run parallel = run_flow(net, 0, false, nullptr);
    bb::minimalist::SynthCache cache;
    const Run cold = run_flow(net, 0, true, &cache);
    const Run warm = run_flow(net, 0, true, &cache);

    const bool identical = serial.fingerprint == parallel.fingerprint &&
                           serial.fingerprint == cold.fingerprint &&
                           serial.fingerprint == warm.fingerprint;
    all_identical = all_identical && identical;

    std::printf(
        "%-10s serial %9s ms | parallel(%d) %9s ms | cold %9s ms | "
        "warm %9s ms | cache %llu hit %llu miss | %s\n",
        design->name.c_str(), fmt(serial.ms).c_str(), auto_jobs,
        fmt(parallel.ms).c_str(), fmt(cold.ms).c_str(), fmt(warm.ms).c_str(),
        static_cast<unsigned long long>(warm.timings.cache_hits),
        static_cast<unsigned long long>(warm.timings.cache_misses),
        identical ? "outputs identical" : "OUTPUT MISMATCH");

    w.begin_object();
    w.member("name", design->name);
    w.member("serial_ms", serial.ms);
    w.member("parallel_ms", parallel.ms);
    w.member("cold_ms", cold.ms);
    w.member("warm_ms", warm.ms);
    w.member("warm_cache_hits", warm.timings.cache_hits);
    w.member("warm_cache_misses", warm.timings.cache_misses);
    w.member("identical", identical);
    w.key("serial_timings").raw(serial.timings.to_json());
    w.key("parallel_timings").raw(parallel.timings.to_json());
    w.key("warm_timings").raw(warm.timings.to_json());
    w.end_object();
  }
  w.end_array();
  w.end_object();

  bb::util::write_file_atomic(json_path, w.str() + "\n");
  std::printf("wrote %s\n", json_path.c_str());

  if (!all_identical) {
    std::cerr << "bench_flowperf: parallel/cached output diverged from the "
                 "serial flow\n";
    return 1;
  }
  return 0;
}
