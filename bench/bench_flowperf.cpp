// Flow-performance benchmark: serial vs parallel controller synthesis
// and cold vs warm synthesis cache, over the four evaluation designs.
//
// For every design the control partition is synthesized four ways:
//   serial    jobs=1, cache off      (the pre-parallel baseline)
//   parallel  jobs=auto, cache off   (thread-pool speedup only)
//   cold      jobs=auto, fresh cache (first run, all misses)
//   warm      jobs=auto, same cache  (memoized re-run, as the Table 3
//                                     comparison re-synthesizes designs)
// and the run cross-checks that all four produce byte-identical reports
// and gate netlists (the parallel flow's determinism contract).
//
// Results are printed as a table and dumped as JSON (stage timings
// included) to the path given as argv[1], default bench_flowperf.json —
// CI uploads that file as an artifact.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/balsa/compile.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/flow.hpp"
#include "src/lint/diag.hpp"
#include "src/minimalist/cache.hpp"
#include "src/netlist/verilog.hpp"
#include "src/util/io.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string fmt(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

struct Run {
  double ms = 0.0;
  std::string fingerprint;  ///< report + verilog, for identity checks
  bb::flow::StageTimings timings;
};

Run run_flow(const bb::hsnet::Netlist& net, int jobs, bool cache,
             bb::minimalist::SynthCache* cache_instance) {
  bb::flow::FlowOptions options = bb::flow::FlowOptions::optimized();
  options.jobs = jobs;
  options.cache = cache;
  options.cache_instance = cache_instance;
  const auto start = Clock::now();
  const auto result = bb::flow::synthesize_control(net, options);
  Run run;
  run.ms = ms_since(start);
  run.fingerprint =
      bb::flow::report(result) + bb::netlist::to_verilog(result.gates);
  run.timings = result.timings;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "bench_flowperf.json";
  const int auto_jobs = bb::flow::effective_jobs(bb::flow::FlowOptions{});
  bool all_identical = true;

  std::string json = "{\"jobs\":" + std::to_string(auto_jobs) +
                     ",\"designs\":[";
  bool first = true;
  for (const auto* design : bb::designs::all_designs()) {
    const auto net = bb::balsa::compile_source(design->source);

    const Run serial = run_flow(net, 1, false, nullptr);
    const Run parallel = run_flow(net, 0, false, nullptr);
    bb::minimalist::SynthCache cache;
    const Run cold = run_flow(net, 0, true, &cache);
    const Run warm = run_flow(net, 0, true, &cache);

    const bool identical = serial.fingerprint == parallel.fingerprint &&
                           serial.fingerprint == cold.fingerprint &&
                           serial.fingerprint == warm.fingerprint;
    all_identical = all_identical && identical;

    std::printf(
        "%-10s serial %9s ms | parallel(%d) %9s ms | cold %9s ms | "
        "warm %9s ms | cache %llu hit %llu miss | %s\n",
        design->name.c_str(), fmt(serial.ms).c_str(), auto_jobs,
        fmt(parallel.ms).c_str(), fmt(cold.ms).c_str(), fmt(warm.ms).c_str(),
        static_cast<unsigned long long>(warm.timings.cache_hits),
        static_cast<unsigned long long>(warm.timings.cache_misses),
        identical ? "outputs identical" : "OUTPUT MISMATCH");

    if (!first) json += ",";
    first = false;
    json += "{\"name\":\"" + bb::lint::json_escape(design->name) + "\"";
    json += ",\"serial_ms\":" + fmt(serial.ms);
    json += ",\"parallel_ms\":" + fmt(parallel.ms);
    json += ",\"cold_ms\":" + fmt(cold.ms);
    json += ",\"warm_ms\":" + fmt(warm.ms);
    json += ",\"warm_cache_hits\":" +
            std::to_string(warm.timings.cache_hits);
    json += ",\"warm_cache_misses\":" +
            std::to_string(warm.timings.cache_misses);
    json += ",\"identical\":";
    json += identical ? "true" : "false";
    json += ",\"serial_timings\":" + serial.timings.to_json();
    json += ",\"parallel_timings\":" + parallel.timings.to_json();
    json += ",\"warm_timings\":" + warm.timings.to_json();
    json += "}";
  }
  json += "]}\n";

  bb::util::write_file_atomic(json_path, json);
  std::printf("wrote %s\n", json_path.c_str());

  if (!all_identical) {
    std::cerr << "bench_flowperf: parallel/cached output diverged from the "
                 "serial flow\n";
    return 1;
  }
  return 0;
}
