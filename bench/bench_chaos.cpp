// Chaos-campaign benchmark artifact: runs the seeded crash-restart
// campaign (src/serve/chaos.hpp) against the real bb-served binary and
// writes its byte-deterministic JSON artifact — the CI evidence that
// `cycles` daemon crashes under concurrent load produced zero cache
// corruption, zero wrong synthesis results, and bounded recovery time.
//
//   bench_chaos [out.json] [--seed N] [--cycles N] [--clients N]
//               [--requests N] [--served PATH] [--work-dir DIR]
//               [--recovery-budget-ms N]
//
// The bb-served binary defaults to the sibling build tree location
// (../src/tools/bb-served relative to this binary).  Exit status: 0
// when the campaign passed, 1 otherwise.
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include <unistd.h>

#include "src/serve/chaos.hpp"
#include "src/util/io.hpp"
#include "src/util/strings.hpp"

namespace {

namespace fs = std::filesystem;

[[noreturn]] void usage() {
  std::cerr << "usage: bench_chaos [out.json] [--seed N] [--cycles N]"
               " [--clients N] [--requests N] [--served PATH]"
               " [--work-dir DIR] [--recovery-budget-ms N]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  bb::serve::ChaosOptions options;
  std::string json_path;
  std::string work_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      options.seed = static_cast<std::uint64_t>(bb::util::parse_int(
          "bench_chaos", "--seed", argv[++i], 1, 1ll << 62));
    } else if (arg == "--cycles" && i + 1 < argc) {
      options.cycles = static_cast<int>(bb::util::parse_int(
          "bench_chaos", "--cycles", argv[++i], 1, 100000));
    } else if (arg == "--clients" && i + 1 < argc) {
      options.clients = static_cast<int>(bb::util::parse_int(
          "bench_chaos", "--clients", argv[++i], 1, 256));
    } else if (arg == "--requests" && i + 1 < argc) {
      options.requests_per_client = static_cast<int>(bb::util::parse_int(
          "bench_chaos", "--requests", argv[++i], 1, 1024));
    } else if (arg == "--served" && i + 1 < argc) {
      options.served_path = argv[++i];
    } else if (arg == "--work-dir" && i + 1 < argc) {
      work_dir = argv[++i];
    } else if (arg == "--recovery-budget-ms" && i + 1 < argc) {
      options.recovery_budget_ms = bb::util::parse_int(
          "bench_chaos", "--recovery-budget-ms", argv[++i], 100, 3600000);
    } else if (!arg.empty() && arg[0] != '-' && json_path.empty()) {
      json_path = arg;
    } else {
      usage();
    }
  }

  if (options.served_path.empty()) {
    // Default: the build-tree sibling (build/bench/bench_chaos next to
    // build/src/tools/bb-served).
    std::error_code ec;
    const fs::path self = fs::canonical(argv[0], ec);
    if (!ec) {
      options.served_path =
          (self.parent_path() / ".." / "src" / "tools" / "bb-served")
              .lexically_normal()
              .string();
    }
  }
  options.work_dir = work_dir.empty()
                         ? "/tmp/bb-chaos-" + std::to_string(::getpid())
                         : work_dir;

  try {
    const bb::serve::ChaosResult result = bb::serve::run_chaos(options);
    std::cout << result.to_text();
    if (!json_path.empty()) {
      bb::util::write_file_atomic(json_path, result.to_json() + "\n");
      std::cout << "wrote " << json_path << "\n";
    }
    if (work_dir.empty()) {
      std::error_code ec;
      fs::remove_all(options.work_dir, ec);
    }
    return result.passed ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_chaos: " << e.what() << "\n";
    return 1;
  }
}
