// Table 1: legal combinations of interleaving operators and argument
// activities ("Burst-Mode aware" restrictions).
//
// Regenerates the matrix by construction: a combination is reported "Yes"
// when the CH expression expands and compiles into a specification that
// passes full Burst-Mode validation; "No" entries are rejected by the
// legality table, and (cross-check) their naive best-guess expansions are
// attempted under --allow-illegal semantics.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "src/bm/compile.hpp"
#include "src/bm/validate.hpp"
#include "src/ch/ast.hpp"
#include "src/ch/expansion.hpp"

namespace {

using bb::ch::Activity;
using bb::ch::ExprKind;

const ExprKind kOps[] = {ExprKind::kEncEarly, ExprKind::kEncLate,
                         ExprKind::kEncMiddle, ExprKind::kSeq,
                         ExprKind::kSeqOv, ExprKind::kMutex};

/// Builds a self-contained test program exercising (op, a1, a2): the
/// operator pair is enclosed in a passive activation when its first
/// argument is active (a complete controller must be input-driven).
bb::ch::ExprPtr test_program(ExprKind op, Activity a1, Activity a2) {
  auto inner = bb::ch::op2(op, bb::ch::ptop(a1, "x"), bb::ch::ptop(a2, "y"));
  if (a1 == Activity::kActive ||
      (op == ExprKind::kSeqOv)) {
    return bb::ch::rep(bb::ch::enc_early(
        bb::ch::ptop(Activity::kPassive, "go"), std::move(inner)));
  }
  return bb::ch::rep(std::move(inner));
}

/// "Yes" when the combination is Table 1 legal AND compiles to a valid BM
/// machine.
std::string verdict(ExprKind op, Activity a1, Activity a2) {
  if (!bb::ch::is_bm_aware(op, a1, a2)) return "No";
  const auto program = test_program(op, a1, a2);
  try {
    const auto spec = bb::bm::compile(*program, "t");
    return bb::bm::validate(spec).ok ? "Yes" : "no (invalid BM)";
  } catch (const std::exception& e) {
    return std::string("no (") + e.what() + ")";
  }
}

void print_table1() {
  std::printf("Table 1: Legal Combinations of Operators and Arguments\n");
  std::printf("%-12s %-15s %-15s %-15s %-15s\n", "Operator", "active/active",
              "active/passive", "passive/active", "passive/passive");
  const Activity kA = Activity::kActive;
  const Activity kP = Activity::kPassive;
  const Activity pairs[4][2] = {{kA, kA}, {kA, kP}, {kP, kA}, {kP, kP}};
  for (const ExprKind op : kOps) {
    std::printf("%-12s", std::string(bb::ch::kind_keyword(op)).c_str());
    for (const auto& pair : pairs) {
      std::printf(" %-15s", verdict(op, pair[0], pair[1]).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper reference: enc-early/enc-middle/seq legal except A/P;\n"
      "enc-late only P/*; seq-ov only A/A; mutex only P/P.\n");
}

void BM_LegalityCheck(benchmark::State& state) {
  for (auto _ : state) {
    for (const ExprKind op : kOps) {
      for (const Activity a : {Activity::kActive, Activity::kPassive}) {
        for (const Activity b : {Activity::kActive, Activity::kPassive}) {
          benchmark::DoNotOptimize(bb::ch::is_bm_aware(op, a, b));
        }
      }
    }
  }
}
BENCHMARK(BM_LegalityCheck);

void BM_CompileLegalCombination(benchmark::State& state) {
  const auto program =
      test_program(ExprKind::kEncEarly, Activity::kPassive, Activity::kActive);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bb::bm::compile(*program, "t"));
  }
}
BENCHMARK(BM_CompileLegalCombination);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
