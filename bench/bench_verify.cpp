// Section 4.3: formal verification of Activation Channel Removal.
//
// For every legal combination of operators in the activating and the
// activated component (sharing one activation channel), the clustered
// controller is checked for conformation equivalence against the
// composition of the two originals with the channel hidden — exactly the
// paper's AVER experiment ("The experiment has succeeded for all operator
// combinations").
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "src/ch/parser.hpp"
#include "src/opt/cluster.hpp"
#include "src/trace/verify.hpp"

namespace {

struct Combo {
  const char* op1;
  const char* act1;
  const char* op2;
};

std::vector<Combo> combos() {
  std::vector<Combo> out;
  const char* enclosures[] = {"enc-early", "enc-middle", "enc-late"};
  for (const char* op1 :
       {"enc-early", "enc-middle", "enc-late", "seq", "seq-ov"}) {
    for (const char* act1 : {"passive", "active"}) {
      // Table 1: enc-late has no active/- row; seq-ov has no passive row.
      if (std::string(op1) == "enc-late" && std::string(act1) == "active") {
        continue;
      }
      if (std::string(op1) == "seq-ov" && std::string(act1) == "passive") {
        continue;
      }
      for (const char* op2 : enclosures) out.push_back({op1, act1, op2});
    }
  }
  return out;
}

struct Pair {
  bb::ch::ExprPtr x;
  bb::ch::ExprPtr y;
};

Pair build(const Combo& c) {
  const std::string inner = std::string("(") + c.op1 + " (p-to-p " + c.act1 +
                            " p) (p-to-p active c))";
  const std::string x_src =
      std::string(c.act1) == "active"
          ? "(rep (enc-early (p-to-p passive go) " + inner + "))"
          : "(rep " + inner + ")";
  const std::string y_src = std::string("(rep (") + c.op2 +
                            " (p-to-p passive c) (p-to-p active d)))";
  return Pair{bb::ch::parse(x_src), bb::ch::parse(y_src)};
}

void print_verification() {
  std::printf("Section 4.3: trace-theory verification of Activation Channel "
              "Removal\n");
  std::printf("%-12s %-9s %-12s %-10s %-8s %-8s\n", "activating", "activity",
              "activated", "verdict", "|comp|", "|clust|");
  int pass = 0, total = 0;
  for (const Combo& c : combos()) {
    Pair pair = build(c);
    const auto merged = bb::opt::activation_channel_removal(
        bb::ch::Program("X", pair.x->clone()),
        bb::ch::Program("Y", pair.y->clone()), "c");
    ++total;
    if (!merged) {
      std::printf("%-12s %-9s %-12s %-10s\n", c.op1, c.act1, c.op2,
                  "NO-MERGE");
      continue;
    }
    const auto result =
        bb::trace::verify_clustering(*pair.x, *pair.y, "c", *merged->body);
    if (result.equivalent) ++pass;
    std::printf("%-12s %-9s %-12s %-10s %-8d %-8d\n", c.op1, c.act1, c.op2,
                result.equivalent ? "EQUIV" : "FAIL", result.composed_states,
                result.clustered_states);
  }
  std::printf("\n%d / %d combinations conform (paper: all succeed)\n", pass,
              total);
}

void BM_VerifyOneCombination(benchmark::State& state) {
  Pair pair = build({"enc-early", "passive", "enc-early"});
  const auto merged = bb::opt::activation_channel_removal(
      bb::ch::Program("X", pair.x->clone()),
      bb::ch::Program("Y", pair.y->clone()), "c");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bb::trace::verify_clustering(*pair.x, *pair.y, "c", *merged->body));
  }
}
BENCHMARK(BM_VerifyOneCombination);

}  // namespace

int main(int argc, char** argv) {
  print_verification();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
