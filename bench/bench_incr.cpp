// Incremental-build benchmark: cold build, warm no-op rebuild, and a
// one-procedure edit over examples/pipeline.balsa (compiled in via
// BB_EXAMPLES_DIR), against a throwaway project directory.
//
//   cold   empty project dir — every unit is dirty (the baseline a
//          non-incremental flow pays on every run)
//   warm   identical source — every unit splices from the manifest
//   edit   one procedure changed — exactly one unit resynthesizes
//
// The run cross-checks the correctness contract (warm and edited
// outputs byte-identical to from-scratch rebuilds, dirty set exactly
// one unit after the edit) and prints a table plus a JSON artifact
// (argv[1], default bench_incr.json) with the speedups — CI uploads the
// JSON and fails the job if the contract breaks or the warm rebuild is
// not at least 5x faster than cold.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "src/flow/flow.hpp"
#include "src/incr/build.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/session.hpp"
#include "src/util/io.hpp"
#include "src/util/json.hpp"

#ifndef BB_EXAMPLES_DIR
#error "BB_EXAMPLES_DIR must point at the examples/ source directory"
#endif

namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

std::string slurp_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "bench_incr: cannot read '" << path << "'\n";
    std::exit(1);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct Run {
  double ms = 0.0;
  bb::incr::BuildResult result;
};

Run timed_build(const std::string& source, const std::string& project_dir,
                const bb::flow::FlowOptions& options) {
  const auto start = Clock::now();
  Run run;
  run.result = bb::incr::build(source, project_dir, options);
  run.ms = std::chrono::duration<double, std::milli>(Clock::now() - start)
               .count();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "bench_incr.json";
  bb::obs::Session session(bb::obs::env_or("", "BB_TRACE"),
                           bb::obs::env_or("", "BB_METRICS"));

  const std::string source =
      slurp_or_die(std::string(BB_EXAMPLES_DIR) + "/pipeline.balsa");
  // The "edit": duplicate deliver's ready pulse — a control-structure
  // change, so the unit's controllers genuinely resynthesize.
  const std::string marker = "in -> v ; out <- v ; sync ready";
  const auto at = source.find(marker);
  if (at == std::string::npos) {
    std::cerr << "bench_incr: edit marker not found in pipeline.balsa\n";
    return 1;
  }
  std::string edited = source;
  edited.replace(at, marker.size(),
                 "in -> v ; out <- v ; sync ready ; sync ready");

  const fs::path project =
      fs::temp_directory_path() /
      ("bb_bench_incr_" + std::to_string(::getpid()));
  const fs::path scratch = project.string() + "_scratch";
  fs::remove_all(project);
  fs::remove_all(scratch);

  const auto options = bb::flow::FlowOptions::optimized();
  const Run cold = timed_build(source, project.string(), options);
  const Run warm = timed_build(source, project.string(), options);
  const Run edit = timed_build(edited, project.string(), options);
  // From-scratch reference for the edited program: the byte-identity
  // oracle the spliced build must match.
  const Run full = timed_build(edited, scratch.string(), options);

  const bool warm_identical = warm.result.verilog == cold.result.verilog &&
                              warm.result.report == cold.result.report;
  const bool edit_identical = edit.result.verilog == full.result.verilog &&
                              edit.result.report == full.result.report;
  const bool dirty_set_exact = edit.result.units_rebuilt == 1 &&
                               edit.result.units_reused ==
                                   edit.result.units.size() - 1;
  const double warm_speedup = warm.ms > 0.0 ? cold.ms / warm.ms : 0.0;
  const double edit_speedup = edit.ms > 0.0 ? full.ms / edit.ms : 0.0;

  std::printf("units %zu | cold %8.3f ms | warm %8.3f ms (%.1fx, %s) | "
              "edit %8.3f ms (%.1fx vs scratch, %zu dirty, %s)\n",
              cold.result.units.size(), cold.ms, warm.ms, warm_speedup,
              warm_identical ? "identical" : "MISMATCH", edit.ms,
              edit_speedup, edit.result.units_rebuilt,
              edit_identical ? "identical" : "MISMATCH");

  bb::util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", bb::obs::kSchemaVersion);
  w.member("units", static_cast<std::int64_t>(cold.result.units.size()));
  w.member("cold_ms", cold.ms);
  w.member("warm_ms", warm.ms);
  w.member("edit_ms", edit.ms);
  w.member("full_ms", full.ms);
  w.member("warm_speedup", warm_speedup);
  w.member("edit_speedup", edit_speedup);
  w.member("edit_units_rebuilt",
           static_cast<std::int64_t>(edit.result.units_rebuilt));
  w.member("edit_units_reused",
           static_cast<std::int64_t>(edit.result.units_reused));
  w.member("edit_controllers_rebuilt", edit.result.controllers_rebuilt);
  w.member("edit_controllers_reused", edit.result.controllers_reused);
  w.member("warm_identical", warm_identical);
  w.member("edit_identical", edit_identical);
  w.member("dirty_set_exact", dirty_set_exact);
  w.key("cold").raw(cold.result.to_json());
  w.key("warm").raw(warm.result.to_json());
  w.key("edit").raw(edit.result.to_json());
  w.end_object();
  bb::util::write_file_atomic(json_path, w.str() + "\n");
  std::printf("wrote %s\n", json_path.c_str());

  fs::remove_all(project);
  fs::remove_all(scratch);

  if (!warm_identical || !edit_identical) {
    std::cerr << "bench_incr: incremental output diverged from a full "
                 "rebuild\n";
    return 1;
  }
  if (!dirty_set_exact) {
    std::cerr << "bench_incr: a one-procedure edit dirtied "
              << edit.result.units_rebuilt << " unit(s)\n";
    return 1;
  }
  if (warm_speedup < 5.0) {
    std::cerr << "bench_incr: warm rebuild only " << warm_speedup
              << "x faster than cold (acceptance floor is 5x)\n";
    return 1;
  }
  return 0;
}
