// Table 3: experimental results — speed and area of the four evaluation
// designs under the unoptimized Balsa baseline and the optimized
// (clustered Burst-Mode) back-end.
//
// Absolute numbers differ from the paper (our substrate is a simulator
// with a characterized cell library, not the authors' post-layout AMS
// 0.35um testbed); the *shape* is the reproduction target: the optimized
// circuits win on speed everywhere, most on the control-dominated
// systolic counter and least on the datapath-dominated microprocessor,
// and pay an area overhead against the hand-optimized templates.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/flow/benchmarks.hpp"

namespace {

struct PaperRow {
  const char* design;
  double unopt_ns, opt_ns, improvement_pct;
  double unopt_area, opt_area, overhead_pct;
};

// Paper Table 3 (speed in ns, area in the paper's mm^2 units).
const PaperRow kPaper[] = {
    {"systolic", 51.29, 40.43, 21.16, 39.68, 50.43, 27.09},
    {"wagging", 49.82, 42.43, 14.83, 228.93, 283.71, 23.92},
    {"stack", 121.58, 107.70, 11.41, 282.48, 335.19, 18.66},
    {"ssem", 66.48, 60.65, 8.76, 453.76, 563.47, 24.17},
};

void print_table3() {
  std::printf("Table 3: Experimental Results (measured | paper)\n\n");
  std::printf("%-22s | %10s %10s %8s | %10s %10s %8s | %s\n", "",
              "Unopt(ns)", "Opt(ns)", "Impr", "Unopt(A)", "Opt(A)", "Ovhd",
              "check");
  for (const PaperRow& paper : kPaper) {
    const auto row = bb::flow::run_table3_row(paper.design);
    if (!row.unoptimized.ok || !row.optimized.ok) {
      std::printf("%-22s FAILED: %s / %s\n", row.title.c_str(),
                  row.unoptimized.detail.c_str(),
                  row.optimized.detail.c_str());
      continue;
    }
    std::printf("%-22s | %10.2f %10.2f %7.2f%% | %10.0f %10.0f %7.2f%% | %s\n",
                row.title.c_str(), row.unoptimized.time_ns,
                row.optimized.time_ns, row.speed_improvement_pct,
                row.unoptimized.total_area, row.optimized.total_area,
                row.area_overhead_pct, row.optimized.detail.c_str());
    std::printf("%-22s | %10.2f %10.2f %7.2f%% | %10.0f %10.0f %7.2f%% | "
                "(paper)\n",
                "", paper.unopt_ns, paper.opt_ns, paper.improvement_pct,
                paper.unopt_area, paper.opt_area, paper.overhead_pct);
  }
  std::printf(
      "\nShape targets: optimized faster on every design; improvement\n"
      "largest for the control-dominated systolic counter and smallest for\n"
      "the datapath-dominated microprocessor core; optimized area larger\n"
      "than the hand-optimized template baseline.\n");
}

void BM_FullFlowSystolicOptimized(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bb::flow::run_benchmark(
        "systolic", bb::flow::FlowOptions::optimized()));
  }
}
BENCHMARK(BM_FullFlowSystolicOptimized)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
