// Table 2: the four-phase expansion of every CH interleaving operator and
// legal argument-activity combination, printed in the paper's notation
// (events of the first argument a1..a4, of the second b1..b4).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/ch/ast.hpp"
#include "src/ch/expansion.hpp"

namespace {

using bb::ch::Activity;
using bb::ch::ExprKind;

void print_row(ExprKind op, Activity a1, Activity a2) {
  if (!bb::ch::is_bm_aware(op, a1, a2)) {
    std::printf("  %-18s -\n",
                (std::string(bb::ch::activity_name(a1)) + "/" +
                 std::string(bb::ch::activity_name(a2)))
                    .c_str());
    return;
  }
  const auto expr =
      bb::ch::op2(op, bb::ch::ptop(a1, "a"), bb::ch::ptop(a2, "b"));
  const auto expansion = bb::ch::expand(*expr);
  std::printf("  %-18s %s\n",
              (std::string(bb::ch::activity_name(a1)) + "/" +
               std::string(bb::ch::activity_name(a2)))
                  .c_str(),
              bb::ch::to_string(expansion).c_str());
}

void print_table2() {
  std::printf("Table 2: The Four-Phase Expansion of CH Operators\n");
  std::printf("(channel a = first argument, channel b = second argument)\n\n");
  const Activity kA = Activity::kActive;
  const Activity kP = Activity::kPassive;
  for (const ExprKind op :
       {ExprKind::kEncEarly, ExprKind::kEncLate, ExprKind::kEncMiddle,
        ExprKind::kSeq, ExprKind::kSeqOv, ExprKind::kMutex}) {
    std::printf("%s:\n", std::string(bb::ch::kind_keyword(op)).c_str());
    print_row(op, kA, kA);
    print_row(op, kA, kP);
    print_row(op, kP, kA);
    print_row(op, kP, kP);
    std::printf("\n");
  }
  std::printf(
      "Paper reference (Table 2), e.g. enc-early A/A = "
      "[a1][a2 b1 b2 b3 b4][a3][a4];\n"
      "seq = [a1 a2 a3 a4 b1][b2][b3][b4]; "
      "enc-middle = [a1 b1][b2 a2][a3 b3][b4 a4].\n");
}

void BM_ExpandOperator(benchmark::State& state) {
  const auto expr = bb::ch::enc_middle(
      bb::ch::ptop(Activity::kPassive, "a"),
      bb::ch::ptop(Activity::kPassive, "b"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bb::ch::expand(*expr));
  }
}
BENCHMARK(BM_ExpandOperator);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
