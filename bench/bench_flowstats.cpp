// Section 6 tool statistics: per design, the handshake netlist size, the
// clustering log (T1 merges / rejections, T2 splits / restores), and the
// synthesized controller inventory (states, products, literals, area).
// Mirrors the paper's observation that clustering yields "netlists of
// several clustered components, as opposed to single, monolithic
// controllers".
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/balsa/compile.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/flow.hpp"
#include "src/netlist/analysis.hpp"

namespace {

void print_design(const bb::designs::DesignInfo& design) {
  std::printf("=== %s (%s)\n", design.title.c_str(), design.name.c_str());
  const auto net = bb::balsa::compile_source(design.source);
  std::printf("handshake components: %zu (%zu control, %zu datapath), "
              "internal control channels: %zu\n",
              net.components().size(), net.control_ids().size(),
              net.datapath_ids().size(),
              net.internal_control_channels().size());

  const auto result =
      bb::flow::synthesize_control(net, bb::flow::FlowOptions::optimized());
  std::printf("cluster log:\n");
  for (const auto& line : result.cluster_stats.log) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("T1 applied %d, rejected %d; calls split %d, distributed %d, "
              "restored %d\n",
              result.cluster_stats.t1_applied,
              result.cluster_stats.t1_rejected,
              result.cluster_stats.calls_split,
              result.cluster_stats.calls_distributed,
              result.cluster_stats.calls_restored);
  std::printf("final controllers: %zu\n", result.info.size());
  for (const auto& info : result.info) {
    std::printf("  %-60s states=%-3d products=%-3zu literals=%-4zu "
                "area=%.0f (members: %zu)\n",
                info.name.substr(0, 60).c_str(), info.states, info.products,
                info.literals, info.area, info.members.size());
  }
  const auto stats = bb::netlist::analyze(result.gates);
  std::printf("control area: %.0f, cells: %d, critical path %.2f ns\n",
              result.area, stats.num_gates, stats.critical_path_ns);
  std::printf("cell mix: %s\n\n",
              bb::netlist::histogram_string(stats).c_str());
}

void BM_SynthesizeControlSsem(benchmark::State& state) {
  const auto net =
      bb::balsa::compile_source(bb::designs::ssem().source);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bb::flow::synthesize_control(net, bb::flow::FlowOptions::optimized()));
  }
}
BENCHMARK(BM_SynthesizeControlSsem)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  for (const auto* design : bb::designs::all_designs()) {
    print_design(*design);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
