// Fig. 4: Activation Channel Removal on the Section 4.1 example — a
// decision-wait activating a sequencer through channel o2.  Prints the
// original CH programs and BM machines, the merged program, and the
// merged 11-state machine of the figure.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/bm/compile.hpp"
#include "src/bm/validate.hpp"
#include "src/ch/parser.hpp"
#include "src/ch/printer.hpp"
#include "src/opt/cluster.hpp"

namespace {

const char* kDecisionWait =
    "(rep (enc-early (p-to-p passive a1)"
    " (mutex (enc-early (p-to-p passive i1) (p-to-p active o1))"
    " (enc-early (p-to-p passive i2) (p-to-p active o2)))))";
const char* kSequencer =
    "(rep (enc-early (p-to-p passive o2)"
    " (seq (p-to-p active c1) (p-to-p active c2))))";

void print_fig4() {
  std::printf("Fig. 4: Activation Channel Removal (decision-wait + "
              "sequencer)\n\n");
  const auto dw = bb::ch::parse(kDecisionWait);
  const auto seq = bb::ch::parse(kSequencer);

  const auto dw_spec = bb::bm::compile(*dw, "decision-wait");
  const auto seq_spec = bb::bm::compile(*seq, "sequencer");
  std::printf("Decision-wait: %d states (paper: 9)\n%s\n", dw_spec.num_states,
              dw_spec.to_bms().c_str());
  std::printf("Sequencer: %d states (paper: 6)\n%s\n", seq_spec.num_states,
              seq_spec.to_bms().c_str());

  const auto merged = bb::opt::activation_channel_removal(
      bb::ch::Program("DW", dw->clone()), bb::ch::Program("SEQ", seq->clone()),
      "o2");
  if (!merged) {
    std::printf("T1 FAILED unexpectedly\n");
    return;
  }
  std::printf("Merged CH program:\n%s\n\n",
              bb::ch::to_pretty_string(*merged->body).c_str());
  const auto spec = bb::bm::compile(*merged->body, "merged");
  const auto check = bb::bm::validate(spec);
  std::printf("Merged controller: %d states (paper Fig. 4: 11), valid: %s\n%s",
              spec.num_states, check.ok ? "yes" : "NO",
              spec.to_bms().c_str());
}

void BM_ActivationChannelRemoval(benchmark::State& state) {
  const auto dw = bb::ch::parse(kDecisionWait);
  const auto seq = bb::ch::parse(kSequencer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bb::opt::activation_channel_removal(
        bb::ch::Program("DW", dw->clone()),
        bb::ch::Program("SEQ", seq->clone()), "o2"));
  }
}
BENCHMARK(BM_ActivationChannelRemoval);

}  // namespace

int main(int argc, char** argv) {
  print_fig4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
