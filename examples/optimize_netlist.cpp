// End-to-end back-end run on a user-written mini-Balsa program: compile,
// partition, cluster, synthesize, map, and simulate — then compare the
// unoptimized and optimized implementations (the Fig. 1 flow).
//
//   $ ./build/examples/optimize_netlist
//
// The design is a small token distributor: a loop that reads a word and
// routes it to one of two outputs depending on a tag bit.
#include <iostream>

#include "src/balsa/compile.hpp"
#include "src/flow/system.hpp"
#include "src/flow/testbench.hpp"
#include "src/netlist/verilog.hpp"

namespace {

constexpr const char* kSource = R"(
-- Route each incoming word to out0 or out1 by its low bit.
procedure router (input in : 8; output out0 : 8; output out1 : 8) is
  variable v : 8
begin
  loop
    in -> v ;
    if v and 1 = 1 then
      out1 <- v >> 1
    else
      out0 <- v >> 1
    end
  end
end
)";

double run(bool optimized, bool dump_verilog) {
  using namespace bb;
  const auto net = balsa::compile_source(kSource);
  const auto options = optimized ? flow::FlowOptions::optimized()
                                 : flow::FlowOptions::unoptimized();
  flow::System system(net, options);

  flow::ActivateDriver activate(system, "activate");
  std::uint64_t next = 0;
  flow::PullServer in(system, "in", [&] { return next++; });
  flow::PushServer out0(system, "out0");
  flow::PushServer out1(system, "out1");
  in.enabled = [&] { return out0.consumed() + out1.consumed() < 8; };

  std::cout << (optimized ? "[optimized]  " : "[unoptimized] ")
            << "controllers=" << system.control().controllers.size()
            << " control area=" << system.control_area()
            << " datapath area=" << system.datapath_area() << "\n";
  if (dump_verilog) {
    std::cout << "\nStructural Verilog of the control netlist:\n"
              << netlist::to_verilog(system.gates()) << "\n";
  }

  system.start().run();
  // Words 0..7 routed by low bit: evens (halved) to out0, odds to out1.
  std::cout << "  out0:";
  for (const auto v : out0.values()) std::cout << " " << v;
  std::cout << "   out1:";
  for (const auto v : out1.values()) std::cout << " " << v;
  const double t = std::max(out0.last_time(), out1.last_time());
  std::cout << "   done at t=" << t << " ns\n";
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const bool dump = argc > 1 && std::string(argv[1]) == "--verilog";
  const double unopt = run(false, false);
  const double opt = run(true, dump);
  std::cout << "\nspeed improvement: "
            << 100.0 * (unopt - opt) / unopt << "%\n";
  return 0;
}
