// Quickstart: model a handshake controller in CH, compile it to a
// Burst-Mode specification, and cluster two controllers with Activation
// Channel Removal.
//
//   $ ./build/examples/quickstart
//
// Walks through the paper's Section 3.4 sequencer and the Section 4.1
// optimization example.
#include <iostream>

#include "src/bm/compile.hpp"
#include "src/bm/validate.hpp"
#include "src/ch/parser.hpp"
#include "src/ch/printer.hpp"
#include "src/opt/cluster.hpp"

int main() {
  using namespace bb;

  // 1. A CH program: the two-way sequencer of Section 3.4.  One passive
  //    activation channel P encloses two sequenced active handshakes.
  const auto sequencer = ch::parse(R"(
    (rep (enc-early (p-to-p passive P)
                    (seq (p-to-p active A1)
                         (p-to-p active A2)))))");
  std::cout << "CH program:\n" << ch::to_pretty_string(*sequencer) << "\n\n";

  // 2. The four-phase expansion (Table 2 semantics).
  const auto expansion = ch::expand(*sequencer);
  std::cout << "Four-phase expansion (intermediate form):\n"
            << ch::to_string(expansion) << "\n\n";

  // 3. Compile to a Burst-Mode specification (Fig. 3) and validate it.
  const auto spec = bm::compile(*sequencer, "sequencer");
  std::cout << "Burst-Mode specification (" << spec.num_states
            << " states):\n"
            << spec.to_bms() << "\n";
  const auto check = bm::validate(spec);
  std::cout << "valid Burst-Mode machine: " << (check.ok ? "yes" : "no")
            << "\n\n";

  // 4. Cluster two controllers: a decision-wait activates this sequencer
  //    through channel o2; Activation Channel Removal (Section 4.1)
  //    merges them and eliminates the channel.
  std::vector<ch::Program> programs;
  programs.emplace_back("DW", ch::parse(R"(
    (rep (enc-early (p-to-p passive a1)
      (mutex (enc-early (p-to-p passive i1) (p-to-p active o1))
             (enc-early (p-to-p passive i2) (p-to-p active o2))))))"));
  programs.emplace_back("SEQ", ch::parse(R"(
    (rep (enc-early (p-to-p passive o2)
                    (seq (p-to-p active c1) (p-to-p active c2)))))"));

  opt::ClusterStats stats;
  const auto clustered = opt::optimize(std::move(programs), {}, &stats);
  for (const auto& line : stats.log) std::cout << line << "\n";
  std::cout << "\nclustered into " << clustered.size() << " controller(s):\n";
  for (const auto& c : clustered) {
    std::cout << ch::to_pretty_string(*c.program.body) << "\n";
    const auto merged = bm::compile(*c.program.body, c.program.name);
    std::cout << "-> " << merged.num_states
              << " states (Fig. 4 of the paper shows 11)\n";
  }
  return 0;
}
