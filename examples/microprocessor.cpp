// Runs the SSEM-like microprocessor core (the paper's fourth evaluation
// design) through the optimized back-end and executes a user-selectable
// machine program against the behavioural memory.
//
//   $ ./build/examples/microprocessor            # the paper's benchmark
//   $ ./build/examples/microprocessor countdown  # a loop with JMP/CMP
#include <iostream>
#include <string>

#include "src/balsa/compile.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/system.hpp"
#include "src/flow/testbench.hpp"

namespace {

/// A program with control flow: sums 5+4+3+2+1 into mem[25] using
/// SUB/CMP/JMP (SSEM-style: arithmetic by repeated negation).
///   acc semantics per design: LDN a: acc = -mem[a]; SUB a: acc -= mem[a];
///   STO a: mem[a] = acc; CMP: skip next if acc < 0; JMP a: pc = mem[a].
std::vector<std::uint32_t> countdown_program() {
  using bb::designs::ssem_encode;
  std::vector<std::uint32_t> mem(32, 0);
  constexpr int kJmp = 0, kLdn = 2, kSto = 3, kSub = 4, kCmp = 6, kStp = 7;
  // mem[20] = counter (5), mem[25] = total, mem[27] = 0, mem[28] = loop
  // target, mem[31] = -1; mem[29]/mem[30] are scratch.
  int pc = 0;
  mem[pc++] = ssem_encode(kLdn, 27);   // acc = -0 = 0
  mem[pc++] = ssem_encode(kSto, 25);   // total = 0
  // loop (pc = 2):  total += counter  (as -((-total) - counter))
  mem[pc++] = ssem_encode(kLdn, 25);   // acc = -total
  mem[pc++] = ssem_encode(kSub, 20);   // acc = -total - counter
  mem[pc++] = ssem_encode(kSto, 29);   // scratch = -(total + counter)
  mem[pc++] = ssem_encode(kLdn, 29);   // acc = total + counter
  mem[pc++] = ssem_encode(kSto, 25);   // total += counter
  // counter -= 1  (as -((-counter) - (-1)))
  mem[pc++] = ssem_encode(kLdn, 20);   // acc = -counter
  mem[pc++] = ssem_encode(kSub, 31);   // acc = -counter + 1 = -(counter-1)
  mem[pc++] = ssem_encode(kSto, 30);   // scratch = -(counter - 1)
  mem[pc++] = ssem_encode(kLdn, 30);   // acc = counter - 1
  mem[pc++] = ssem_encode(kSto, 20);   // counter -= 1
  mem[pc++] = ssem_encode(kLdn, 20);   // acc = -counter
  mem[pc++] = ssem_encode(kCmp, 0);    // counter > 0: acc < 0 -> skip STP
  mem[pc++] = ssem_encode(kStp, 0);    // counter == 0: stop
  mem[pc++] = ssem_encode(kJmp, 28);   // pc = mem[28] = 2
  mem[20] = 5;
  mem[27] = 0;
  mem[28] = 2;
  mem[31] = 0xFFFFFFFFu;  // -1
  return mem;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bb;
  const bool countdown = argc > 1 && std::string(argv[1]) == "countdown";

  const auto& design = designs::ssem();
  std::cout << "compiling SSEM core...\n" << design.source << "\n";
  const auto net = balsa::compile_source(design.source);
  flow::System system(net, flow::FlowOptions::optimized());
  std::cout << "control area " << system.control_area() << ", datapath area "
            << system.datapath_area() << ", "
            << system.control().controllers.size() << " controllers\n";

  flow::ActivateDriver activate(system, "activate");
  flow::SsemMemory memory(system,
                          countdown ? countdown_program()
                                    : designs::ssem_benchmark_program());

  const bool quiescent = system.start().run(5e6, 50'000'000);
  std::cout << "\nprogram " << (activate.done() ? "halted" : "DID NOT halt")
            << " at t=" << activate.done_time() << " ns (quiescent="
            << quiescent << "), " << memory.reads() << " reads, "
            << memory.writes() << " writes\n";

  if (countdown) {
    std::cout << "mem[25] (sum 5+4+3+2+1) = " << memory.contents()[25]
              << " (expected 15)\n";
  } else {
    std::cout << "mem[20..24] =";
    for (int a = 20; a <= 24; ++a) std::cout << " " << memory.contents()[a];
    std::cout << " (expected 0 1 2 3 4)\n";
  }
  return activate.done() ? 0 : 1;
}
