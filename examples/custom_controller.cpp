// Building and verifying a custom clustered controller from scratch:
//   1. model two controllers in CH (a 3-way sequencer driving a 1-way
//      call wrapper around a worker channel);
//   2. cluster them and *formally verify* the merge with the trace-theory
//      checker (the Section 4.3 machinery);
//   3. synthesize the result to hazard-free two-level logic, map it to
//      gates, emit structural Verilog, and exercise it in the event
//      simulator.
//
//   $ ./build/examples/custom_controller
#include <iostream>

#include "src/bm/compile.hpp"
#include "src/bm/validate.hpp"
#include "src/ch/parser.hpp"
#include "src/ch/printer.hpp"
#include "src/minimalist/synth.hpp"
#include "src/netlist/verilog.hpp"
#include "src/opt/cluster.hpp"
#include "src/sim/gatesim.hpp"
#include "src/techmap/map.hpp"
#include "src/trace/verify.hpp"

int main() {
  using namespace bb;

  // 1. Two CH controllers sharing channel w.
  const auto master = ch::parse(R"(
    (rep (enc-early (p-to-p passive go)
      (seq (p-to-p active w)
           (seq (p-to-p active w2) (p-to-p active done))))))");
  const auto worker = ch::parse(R"(
    (rep (enc-early (p-to-p passive w) (p-to-p active task))))");

  std::cout << "master: " << ch::to_string(*master) << "\n";
  std::cout << "worker: " << ch::to_string(*worker) << "\n\n";

  // 2. Cluster across channel w, then verify the merge formally.
  const auto merged = opt::activation_channel_removal(
      ch::Program("M", master->clone()), ch::Program("W", worker->clone()),
      "w");
  if (!merged) {
    std::cerr << "clustering rejected\n";
    return 1;
  }
  std::cout << "merged: " << ch::to_string(*merged->body) << "\n";
  const auto verdict =
      trace::verify_clustering(*master, *worker, "w", *merged->body);
  std::cout << "conformation equivalent: "
            << (verdict.equivalent ? "yes" : "NO") << " (composed DFA "
            << verdict.composed_states << " states, clustered "
            << verdict.clustered_states << ")\n\n";

  // 3. Synthesize, validate, map, print Verilog, and simulate.
  const auto spec = bm::compile(*merged->body, "merged");
  std::cout << "Burst-Mode machine: " << spec.num_states << " states, "
            << spec.arcs.size() << " arcs; valid: "
            << (bm::validate(spec).ok ? "yes" : "no") << "\n";
  const auto ctrl = minimalist::synthesize(spec);
  std::cout << "two-level logic: " << ctrl.num_products() << " products, "
            << ctrl.num_literals() << " literals\n";
  const auto gates = techmap::map_controller(
      ctrl, techmap::CellLibrary::ams035(), {}, "merged");
  std::cout << "mapped: " << gates.gates().size() << " cells, area "
            << gates.total_area() << " um^2\n\n";
  std::cout << netlist::to_verilog(gates) << "\n";

  // Drive one activation cycle at gate level.
  sim::Simulator simulator(gates.num_nets());
  sim::GateBinding binding(gates);
  binding.bind(simulator);
  std::vector<int> clamped;
  for (std::size_t s = 0; s < ctrl.state_bits.size(); ++s) {
    const int net = gates.net("merged/" + ctrl.state_bits[s]);
    simulator.set_initial(net, ctrl.initial_state_code[s]);
    clamped.push_back(net);
  }
  binding.settle_initial(simulator, clamped);

  const auto handshake = [&](const std::string& ch) {
    simulator.schedule(gates.net(ch + "_a"), true, 0.8);
    simulator.run();
    simulator.schedule(gates.net(ch + "_a"), false, 0.8);
    simulator.run();
  };
  simulator.schedule(gates.net("go_r"), true, 0.8);
  simulator.run();
  std::cout << "after go_r+: task_r=" << simulator.value(gates.net("task_r"))
            << " (worker inlined: the task starts directly)\n";
  handshake("task");
  handshake("w2");
  handshake("done");
  std::cout << "after the three handshakes: go_a="
            << simulator.value(gates.net("go_a")) << " at t="
            << simulator.now() << " ns\n";
  return 0;
}
