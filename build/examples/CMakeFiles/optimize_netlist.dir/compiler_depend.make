# Empty compiler generated dependencies file for optimize_netlist.
# This may be replaced when dependencies are built.
