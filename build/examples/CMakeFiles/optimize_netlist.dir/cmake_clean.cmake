file(REMOVE_RECURSE
  "CMakeFiles/optimize_netlist.dir/optimize_netlist.cpp.o"
  "CMakeFiles/optimize_netlist.dir/optimize_netlist.cpp.o.d"
  "optimize_netlist"
  "optimize_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
