file(REMOVE_RECURSE
  "CMakeFiles/microprocessor.dir/microprocessor.cpp.o"
  "CMakeFiles/microprocessor.dir/microprocessor.cpp.o.d"
  "microprocessor"
  "microprocessor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
