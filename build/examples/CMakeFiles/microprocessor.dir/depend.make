# Empty dependencies file for microprocessor.
# This may be replaced when dependencies are built.
