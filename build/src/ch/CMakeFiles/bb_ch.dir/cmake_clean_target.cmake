file(REMOVE_RECURSE
  "libbb_ch.a"
)
