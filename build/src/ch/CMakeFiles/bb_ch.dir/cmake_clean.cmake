file(REMOVE_RECURSE
  "CMakeFiles/bb_ch.dir/ast.cpp.o"
  "CMakeFiles/bb_ch.dir/ast.cpp.o.d"
  "CMakeFiles/bb_ch.dir/expansion.cpp.o"
  "CMakeFiles/bb_ch.dir/expansion.cpp.o.d"
  "CMakeFiles/bb_ch.dir/parser.cpp.o"
  "CMakeFiles/bb_ch.dir/parser.cpp.o.d"
  "CMakeFiles/bb_ch.dir/printer.cpp.o"
  "CMakeFiles/bb_ch.dir/printer.cpp.o.d"
  "libbb_ch.a"
  "libbb_ch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_ch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
