# Empty dependencies file for bb_ch.
# This may be replaced when dependencies are built.
