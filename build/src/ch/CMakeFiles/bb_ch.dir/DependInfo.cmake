
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ch/ast.cpp" "src/ch/CMakeFiles/bb_ch.dir/ast.cpp.o" "gcc" "src/ch/CMakeFiles/bb_ch.dir/ast.cpp.o.d"
  "/root/repo/src/ch/expansion.cpp" "src/ch/CMakeFiles/bb_ch.dir/expansion.cpp.o" "gcc" "src/ch/CMakeFiles/bb_ch.dir/expansion.cpp.o.d"
  "/root/repo/src/ch/parser.cpp" "src/ch/CMakeFiles/bb_ch.dir/parser.cpp.o" "gcc" "src/ch/CMakeFiles/bb_ch.dir/parser.cpp.o.d"
  "/root/repo/src/ch/printer.cpp" "src/ch/CMakeFiles/bb_ch.dir/printer.cpp.o" "gcc" "src/ch/CMakeFiles/bb_ch.dir/printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
