file(REMOVE_RECURSE
  "libbb_util.a"
)
