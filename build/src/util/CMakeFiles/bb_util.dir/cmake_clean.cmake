file(REMOVE_RECURSE
  "CMakeFiles/bb_util.dir/strings.cpp.o"
  "CMakeFiles/bb_util.dir/strings.cpp.o.d"
  "libbb_util.a"
  "libbb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
