# Empty compiler generated dependencies file for bb_util.
# This may be replaced when dependencies are built.
