# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("logic")
subdirs("ch")
subdirs("bm")
subdirs("petri")
subdirs("trace")
subdirs("hsnet")
subdirs("balsa")
subdirs("opt")
subdirs("minimalist")
subdirs("netlist")
subdirs("techmap")
subdirs("sim")
subdirs("designs")
subdirs("flow")
subdirs("tools")
