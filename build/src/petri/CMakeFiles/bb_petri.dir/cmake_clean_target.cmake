file(REMOVE_RECURSE
  "libbb_petri.a"
)
