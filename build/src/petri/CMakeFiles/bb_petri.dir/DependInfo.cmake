
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/petri/from_ch.cpp" "src/petri/CMakeFiles/bb_petri.dir/from_ch.cpp.o" "gcc" "src/petri/CMakeFiles/bb_petri.dir/from_ch.cpp.o.d"
  "/root/repo/src/petri/net.cpp" "src/petri/CMakeFiles/bb_petri.dir/net.cpp.o" "gcc" "src/petri/CMakeFiles/bb_petri.dir/net.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ch/CMakeFiles/bb_ch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
