# Empty dependencies file for bb_petri.
# This may be replaced when dependencies are built.
