file(REMOVE_RECURSE
  "CMakeFiles/bb_petri.dir/from_ch.cpp.o"
  "CMakeFiles/bb_petri.dir/from_ch.cpp.o.d"
  "CMakeFiles/bb_petri.dir/net.cpp.o"
  "CMakeFiles/bb_petri.dir/net.cpp.o.d"
  "libbb_petri.a"
  "libbb_petri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_petri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
