file(REMOVE_RECURSE
  "CMakeFiles/bb_sim.dir/datapath.cpp.o"
  "CMakeFiles/bb_sim.dir/datapath.cpp.o.d"
  "CMakeFiles/bb_sim.dir/gatesim.cpp.o"
  "CMakeFiles/bb_sim.dir/gatesim.cpp.o.d"
  "CMakeFiles/bb_sim.dir/kernel.cpp.o"
  "CMakeFiles/bb_sim.dir/kernel.cpp.o.d"
  "libbb_sim.a"
  "libbb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
