file(REMOVE_RECURSE
  "CMakeFiles/bb_techmap.dir/cells.cpp.o"
  "CMakeFiles/bb_techmap.dir/cells.cpp.o.d"
  "CMakeFiles/bb_techmap.dir/map.cpp.o"
  "CMakeFiles/bb_techmap.dir/map.cpp.o.d"
  "CMakeFiles/bb_techmap.dir/templates.cpp.o"
  "CMakeFiles/bb_techmap.dir/templates.cpp.o.d"
  "libbb_techmap.a"
  "libbb_techmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_techmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
