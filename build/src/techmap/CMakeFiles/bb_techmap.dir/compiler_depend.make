# Empty compiler generated dependencies file for bb_techmap.
# This may be replaced when dependencies are built.
