file(REMOVE_RECURSE
  "libbb_techmap.a"
)
