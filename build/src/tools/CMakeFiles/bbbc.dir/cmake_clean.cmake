file(REMOVE_RECURSE
  "CMakeFiles/bbbc.dir/bbbc.cpp.o"
  "CMakeFiles/bbbc.dir/bbbc.cpp.o.d"
  "bbbc"
  "bbbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
