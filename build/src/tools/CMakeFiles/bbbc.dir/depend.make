# Empty dependencies file for bbbc.
# This may be replaced when dependencies are built.
