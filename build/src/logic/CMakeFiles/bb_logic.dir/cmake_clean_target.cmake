file(REMOVE_RECURSE
  "libbb_logic.a"
)
