file(REMOVE_RECURSE
  "CMakeFiles/bb_logic.dir/cover.cpp.o"
  "CMakeFiles/bb_logic.dir/cover.cpp.o.d"
  "CMakeFiles/bb_logic.dir/cube.cpp.o"
  "CMakeFiles/bb_logic.dir/cube.cpp.o.d"
  "CMakeFiles/bb_logic.dir/espresso.cpp.o"
  "CMakeFiles/bb_logic.dir/espresso.cpp.o.d"
  "CMakeFiles/bb_logic.dir/primes.cpp.o"
  "CMakeFiles/bb_logic.dir/primes.cpp.o.d"
  "CMakeFiles/bb_logic.dir/ucp.cpp.o"
  "CMakeFiles/bb_logic.dir/ucp.cpp.o.d"
  "libbb_logic.a"
  "libbb_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
