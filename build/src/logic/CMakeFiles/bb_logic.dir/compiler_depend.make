# Empty compiler generated dependencies file for bb_logic.
# This may be replaced when dependencies are built.
