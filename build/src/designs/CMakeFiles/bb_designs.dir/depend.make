# Empty dependencies file for bb_designs.
# This may be replaced when dependencies are built.
