
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/designs/designs.cpp" "src/designs/CMakeFiles/bb_designs.dir/designs.cpp.o" "gcc" "src/designs/CMakeFiles/bb_designs.dir/designs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/balsa/CMakeFiles/bb_balsa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hsnet/CMakeFiles/bb_hsnet.dir/DependInfo.cmake"
  "/root/repo/build/src/ch/CMakeFiles/bb_ch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
