file(REMOVE_RECURSE
  "libbb_designs.a"
)
