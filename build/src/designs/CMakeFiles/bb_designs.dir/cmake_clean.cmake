file(REMOVE_RECURSE
  "CMakeFiles/bb_designs.dir/designs.cpp.o"
  "CMakeFiles/bb_designs.dir/designs.cpp.o.d"
  "libbb_designs.a"
  "libbb_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
