file(REMOVE_RECURSE
  "libbb_bm.a"
)
