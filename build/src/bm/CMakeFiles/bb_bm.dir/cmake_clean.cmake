file(REMOVE_RECURSE
  "CMakeFiles/bb_bm.dir/compile.cpp.o"
  "CMakeFiles/bb_bm.dir/compile.cpp.o.d"
  "CMakeFiles/bb_bm.dir/parse.cpp.o"
  "CMakeFiles/bb_bm.dir/parse.cpp.o.d"
  "CMakeFiles/bb_bm.dir/spec.cpp.o"
  "CMakeFiles/bb_bm.dir/spec.cpp.o.d"
  "CMakeFiles/bb_bm.dir/validate.cpp.o"
  "CMakeFiles/bb_bm.dir/validate.cpp.o.d"
  "libbb_bm.a"
  "libbb_bm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_bm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
