# Empty dependencies file for bb_bm.
# This may be replaced when dependencies are built.
