file(REMOVE_RECURSE
  "libbb_trace.a"
)
