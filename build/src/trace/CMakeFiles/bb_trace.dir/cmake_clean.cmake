file(REMOVE_RECURSE
  "CMakeFiles/bb_trace.dir/automaton.cpp.o"
  "CMakeFiles/bb_trace.dir/automaton.cpp.o.d"
  "CMakeFiles/bb_trace.dir/verify.cpp.o"
  "CMakeFiles/bb_trace.dir/verify.cpp.o.d"
  "libbb_trace.a"
  "libbb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
