# Empty compiler generated dependencies file for bb_trace.
# This may be replaced when dependencies are built.
