# Empty dependencies file for bb_hsnet.
# This may be replaced when dependencies are built.
