file(REMOVE_RECURSE
  "libbb_hsnet.a"
)
