file(REMOVE_RECURSE
  "CMakeFiles/bb_hsnet.dir/component.cpp.o"
  "CMakeFiles/bb_hsnet.dir/component.cpp.o.d"
  "CMakeFiles/bb_hsnet.dir/netlist.cpp.o"
  "CMakeFiles/bb_hsnet.dir/netlist.cpp.o.d"
  "CMakeFiles/bb_hsnet.dir/to_ch.cpp.o"
  "CMakeFiles/bb_hsnet.dir/to_ch.cpp.o.d"
  "libbb_hsnet.a"
  "libbb_hsnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_hsnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
