file(REMOVE_RECURSE
  "libbb_opt.a"
)
