file(REMOVE_RECURSE
  "CMakeFiles/bb_opt.dir/ch_util.cpp.o"
  "CMakeFiles/bb_opt.dir/ch_util.cpp.o.d"
  "CMakeFiles/bb_opt.dir/cluster.cpp.o"
  "CMakeFiles/bb_opt.dir/cluster.cpp.o.d"
  "libbb_opt.a"
  "libbb_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
