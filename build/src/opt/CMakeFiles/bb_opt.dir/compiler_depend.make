# Empty compiler generated dependencies file for bb_opt.
# This may be replaced when dependencies are built.
