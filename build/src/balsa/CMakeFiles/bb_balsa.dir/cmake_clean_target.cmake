file(REMOVE_RECURSE
  "libbb_balsa.a"
)
