# Empty dependencies file for bb_balsa.
# This may be replaced when dependencies are built.
