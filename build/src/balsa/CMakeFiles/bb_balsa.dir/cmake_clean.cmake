file(REMOVE_RECURSE
  "CMakeFiles/bb_balsa.dir/compile.cpp.o"
  "CMakeFiles/bb_balsa.dir/compile.cpp.o.d"
  "CMakeFiles/bb_balsa.dir/parser.cpp.o"
  "CMakeFiles/bb_balsa.dir/parser.cpp.o.d"
  "libbb_balsa.a"
  "libbb_balsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_balsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
