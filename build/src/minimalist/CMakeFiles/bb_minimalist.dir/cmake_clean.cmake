file(REMOVE_RECURSE
  "CMakeFiles/bb_minimalist.dir/funcspec.cpp.o"
  "CMakeFiles/bb_minimalist.dir/funcspec.cpp.o.d"
  "CMakeFiles/bb_minimalist.dir/hfmin.cpp.o"
  "CMakeFiles/bb_minimalist.dir/hfmin.cpp.o.d"
  "CMakeFiles/bb_minimalist.dir/statemin.cpp.o"
  "CMakeFiles/bb_minimalist.dir/statemin.cpp.o.d"
  "CMakeFiles/bb_minimalist.dir/synth.cpp.o"
  "CMakeFiles/bb_minimalist.dir/synth.cpp.o.d"
  "libbb_minimalist.a"
  "libbb_minimalist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_minimalist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
