# Empty dependencies file for bb_minimalist.
# This may be replaced when dependencies are built.
