file(REMOVE_RECURSE
  "libbb_minimalist.a"
)
