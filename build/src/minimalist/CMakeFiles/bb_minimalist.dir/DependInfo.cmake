
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minimalist/funcspec.cpp" "src/minimalist/CMakeFiles/bb_minimalist.dir/funcspec.cpp.o" "gcc" "src/minimalist/CMakeFiles/bb_minimalist.dir/funcspec.cpp.o.d"
  "/root/repo/src/minimalist/hfmin.cpp" "src/minimalist/CMakeFiles/bb_minimalist.dir/hfmin.cpp.o" "gcc" "src/minimalist/CMakeFiles/bb_minimalist.dir/hfmin.cpp.o.d"
  "/root/repo/src/minimalist/statemin.cpp" "src/minimalist/CMakeFiles/bb_minimalist.dir/statemin.cpp.o" "gcc" "src/minimalist/CMakeFiles/bb_minimalist.dir/statemin.cpp.o.d"
  "/root/repo/src/minimalist/synth.cpp" "src/minimalist/CMakeFiles/bb_minimalist.dir/synth.cpp.o" "gcc" "src/minimalist/CMakeFiles/bb_minimalist.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bm/CMakeFiles/bb_bm.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/bb_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ch/CMakeFiles/bb_ch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
