# Empty compiler generated dependencies file for bb_minimalist.
# This may be replaced when dependencies are built.
