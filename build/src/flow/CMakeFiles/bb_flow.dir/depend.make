# Empty dependencies file for bb_flow.
# This may be replaced when dependencies are built.
