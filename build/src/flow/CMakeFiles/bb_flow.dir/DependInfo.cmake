
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/benchmarks.cpp" "src/flow/CMakeFiles/bb_flow.dir/benchmarks.cpp.o" "gcc" "src/flow/CMakeFiles/bb_flow.dir/benchmarks.cpp.o.d"
  "/root/repo/src/flow/flow.cpp" "src/flow/CMakeFiles/bb_flow.dir/flow.cpp.o" "gcc" "src/flow/CMakeFiles/bb_flow.dir/flow.cpp.o.d"
  "/root/repo/src/flow/system.cpp" "src/flow/CMakeFiles/bb_flow.dir/system.cpp.o" "gcc" "src/flow/CMakeFiles/bb_flow.dir/system.cpp.o.d"
  "/root/repo/src/flow/testbench.cpp" "src/flow/CMakeFiles/bb_flow.dir/testbench.cpp.o" "gcc" "src/flow/CMakeFiles/bb_flow.dir/testbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/balsa/CMakeFiles/bb_balsa.dir/DependInfo.cmake"
  "/root/repo/build/src/designs/CMakeFiles/bb_designs.dir/DependInfo.cmake"
  "/root/repo/build/src/hsnet/CMakeFiles/bb_hsnet.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/bb_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/minimalist/CMakeFiles/bb_minimalist.dir/DependInfo.cmake"
  "/root/repo/build/src/techmap/CMakeFiles/bb_techmap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/bb_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/bm/CMakeFiles/bb_bm.dir/DependInfo.cmake"
  "/root/repo/build/src/ch/CMakeFiles/bb_ch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/bb_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
