file(REMOVE_RECURSE
  "libbb_flow.a"
)
