file(REMOVE_RECURSE
  "CMakeFiles/bb_flow.dir/benchmarks.cpp.o"
  "CMakeFiles/bb_flow.dir/benchmarks.cpp.o.d"
  "CMakeFiles/bb_flow.dir/flow.cpp.o"
  "CMakeFiles/bb_flow.dir/flow.cpp.o.d"
  "CMakeFiles/bb_flow.dir/system.cpp.o"
  "CMakeFiles/bb_flow.dir/system.cpp.o.d"
  "CMakeFiles/bb_flow.dir/testbench.cpp.o"
  "CMakeFiles/bb_flow.dir/testbench.cpp.o.d"
  "libbb_flow.a"
  "libbb_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
