file(REMOVE_RECURSE
  "libbb_netlist.a"
)
