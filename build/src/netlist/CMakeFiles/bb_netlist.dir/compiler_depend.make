# Empty compiler generated dependencies file for bb_netlist.
# This may be replaced when dependencies are built.
