file(REMOVE_RECURSE
  "CMakeFiles/bb_netlist.dir/analysis.cpp.o"
  "CMakeFiles/bb_netlist.dir/analysis.cpp.o.d"
  "CMakeFiles/bb_netlist.dir/gates.cpp.o"
  "CMakeFiles/bb_netlist.dir/gates.cpp.o.d"
  "CMakeFiles/bb_netlist.dir/verilog.cpp.o"
  "CMakeFiles/bb_netlist.dir/verilog.cpp.o.d"
  "libbb_netlist.a"
  "libbb_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
