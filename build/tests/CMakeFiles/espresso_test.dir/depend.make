# Empty dependencies file for espresso_test.
# This may be replaced when dependencies are built.
