file(REMOVE_RECURSE
  "CMakeFiles/espresso_test.dir/espresso_test.cpp.o"
  "CMakeFiles/espresso_test.dir/espresso_test.cpp.o.d"
  "espresso_test"
  "espresso_test.pdb"
  "espresso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espresso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
