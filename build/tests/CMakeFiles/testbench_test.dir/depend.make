# Empty dependencies file for testbench_test.
# This may be replaced when dependencies are built.
