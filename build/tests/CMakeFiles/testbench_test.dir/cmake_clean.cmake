file(REMOVE_RECURSE
  "CMakeFiles/testbench_test.dir/testbench_test.cpp.o"
  "CMakeFiles/testbench_test.dir/testbench_test.cpp.o.d"
  "testbench_test"
  "testbench_test.pdb"
  "testbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
