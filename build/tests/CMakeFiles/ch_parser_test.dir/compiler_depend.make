# Empty compiler generated dependencies file for ch_parser_test.
# This may be replaced when dependencies are built.
