file(REMOVE_RECURSE
  "CMakeFiles/ch_parser_test.dir/ch_parser_test.cpp.o"
  "CMakeFiles/ch_parser_test.dir/ch_parser_test.cpp.o.d"
  "ch_parser_test"
  "ch_parser_test.pdb"
  "ch_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
