# Empty compiler generated dependencies file for bm_parse_test.
# This may be replaced when dependencies are built.
