file(REMOVE_RECURSE
  "CMakeFiles/bm_parse_test.dir/bm_parse_test.cpp.o"
  "CMakeFiles/bm_parse_test.dir/bm_parse_test.cpp.o.d"
  "bm_parse_test"
  "bm_parse_test.pdb"
  "bm_parse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_parse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
