file(REMOVE_RECURSE
  "CMakeFiles/ch_expansion_test.dir/ch_expansion_test.cpp.o"
  "CMakeFiles/ch_expansion_test.dir/ch_expansion_test.cpp.o.d"
  "ch_expansion_test"
  "ch_expansion_test.pdb"
  "ch_expansion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_expansion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
