# Empty dependencies file for ch_expansion_test.
# This may be replaced when dependencies are built.
