# Empty compiler generated dependencies file for minimalist_test.
# This may be replaced when dependencies are built.
