file(REMOVE_RECURSE
  "CMakeFiles/minimalist_test.dir/minimalist_test.cpp.o"
  "CMakeFiles/minimalist_test.dir/minimalist_test.cpp.o.d"
  "minimalist_test"
  "minimalist_test.pdb"
  "minimalist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimalist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
