# Empty dependencies file for balsa_test.
# This may be replaced when dependencies are built.
