file(REMOVE_RECURSE
  "CMakeFiles/balsa_test.dir/balsa_test.cpp.o"
  "CMakeFiles/balsa_test.dir/balsa_test.cpp.o.d"
  "balsa_test"
  "balsa_test.pdb"
  "balsa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
