# Empty dependencies file for ch_ast_test.
# This may be replaced when dependencies are built.
