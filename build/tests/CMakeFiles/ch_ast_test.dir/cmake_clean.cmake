file(REMOVE_RECURSE
  "CMakeFiles/ch_ast_test.dir/ch_ast_test.cpp.o"
  "CMakeFiles/ch_ast_test.dir/ch_ast_test.cpp.o.d"
  "ch_ast_test"
  "ch_ast_test.pdb"
  "ch_ast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_ast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
