# Empty compiler generated dependencies file for hsnet_test.
# This may be replaced when dependencies are built.
