file(REMOVE_RECURSE
  "CMakeFiles/hsnet_test.dir/hsnet_test.cpp.o"
  "CMakeFiles/hsnet_test.dir/hsnet_test.cpp.o.d"
  "hsnet_test"
  "hsnet_test.pdb"
  "hsnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
