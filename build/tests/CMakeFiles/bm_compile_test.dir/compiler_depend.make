# Empty compiler generated dependencies file for bm_compile_test.
# This may be replaced when dependencies are built.
