file(REMOVE_RECURSE
  "CMakeFiles/bm_compile_test.dir/bm_compile_test.cpp.o"
  "CMakeFiles/bm_compile_test.dir/bm_compile_test.cpp.o.d"
  "bm_compile_test"
  "bm_compile_test.pdb"
  "bm_compile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
