# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/logic_test[1]_include.cmake")
include("/root/repo/build/tests/ch_ast_test[1]_include.cmake")
include("/root/repo/build/tests/ch_parser_test[1]_include.cmake")
include("/root/repo/build/tests/ch_expansion_test[1]_include.cmake")
include("/root/repo/build/tests/bm_compile_test[1]_include.cmake")
include("/root/repo/build/tests/hsnet_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/petri_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/minimalist_test[1]_include.cmake")
include("/root/repo/build/tests/balsa_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/templates_test[1]_include.cmake")
include("/root/repo/build/tests/designs_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/bm_parse_test[1]_include.cmake")
include("/root/repo/build/tests/espresso_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/testbench_test[1]_include.cmake")
