# Empty dependencies file for bench_verify.
# This may be replaced when dependencies are built.
