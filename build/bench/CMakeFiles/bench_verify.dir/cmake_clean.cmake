file(REMOVE_RECURSE
  "CMakeFiles/bench_verify.dir/bench_verify.cpp.o"
  "CMakeFiles/bench_verify.dir/bench_verify.cpp.o.d"
  "bench_verify"
  "bench_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
