file(REMOVE_RECURSE
  "CMakeFiles/bench_flowstats.dir/bench_flowstats.cpp.o"
  "CMakeFiles/bench_flowstats.dir/bench_flowstats.cpp.o.d"
  "bench_flowstats"
  "bench_flowstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flowstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
