# Empty dependencies file for bench_flowstats.
# This may be replaced when dependencies are built.
